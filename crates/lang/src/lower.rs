//! CPS lowering of MojaveC into the FIR.
//!
//! The lowering follows the structure the paper describes for MCC:
//! source-level control flow becomes tail calls between FIR functions, and
//! all mutable state lives in the heap.
//!
//! Key decisions:
//!
//! * **Frames.** Each source function activation allocates a *frame* block
//!   (an array of `Any`) holding every parameter and local.  Reads and
//!   writes of locals are heap loads/stores.  Because frames are heap
//!   blocks, speculation rollback restores local variables exactly like any
//!   other heap data — "the entire process state, including all variable and
//!   heap values" (§4.3).
//! * **Returns.** A source function `T f(…)` lowers to an FIR function with
//!   an extra final parameter `retk`, a closure of type `clo(any)`;
//!   `return e` becomes a tail call of `retk(e)`.
//! * **Suspension points.** Statements after a user-function call, a
//!   `speculate()`, a `commit`, or a `checkpoint`/`migrate` become fresh
//!   top-level FIR functions (continuations).  Loops and `if` join points
//!   become FIR functions taking `(frame, retk)`.
//! * **Primitives.**
//!   `speculate()` → `Speculate`, the continuation's first parameter is the
//!   speculation id (positive on entry, the rollback code after an abort);
//!   `commit(id)` → `Commit`; `abort(id)` → `Rollback [id, 0]` (Figure 1
//!   semantics: `speculate()` then returns 0); `retry(id)` →
//!   `Rollback [id, id]` (Figure 2 semantics: the loop re-runs from the
//!   speculation entry with the same id); `checkpoint(name)` /
//!   `suspend(name)` / `migrate(target)` → `Migrate` with the corresponding
//!   protocol scheme.
//! * **Pre-passes.** User-function calls nested inside expressions are
//!   hoisted into temporaries; declarations are α-renamed so every variable
//!   has one frame slot.
//! * `&&`/`||` are *strict* (both operands evaluate); they lower to the
//!   FIR's boolean `band`/`bor`.

use crate::ast::{BinOp, CType, Expr as CExpr, FunDecl, Stmt, UnOp, Unit};
use crate::error::{CompileError, SourcePos};
use mojave_fir::builder::ProgramBuilder;
use mojave_fir::{Atom, Binop, Expr, FunId, Program, Ty, Unop, VarId};
use std::collections::HashMap;

/// Lower a parsed translation unit to an FIR program.
pub fn lower_program(unit: &Unit) -> Result<Program, CompileError> {
    Lowerer::new(unit)?.lower(unit)
}

/// Signature of a callable (user function, runtime external or builtin).
#[derive(Debug, Clone)]
struct Sig {
    params: Vec<CType>,
    ret: CType,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Callee {
    User,
    Extern,
    Builtin,
}

/// Per-source-function lowering state.
struct FnState {
    /// FIR name prefix for generated continuations.
    fname: String,
    /// Variable name → (frame slot, declared type).
    slots: HashMap<String, (usize, CType)>,
    /// Total number of frame slots.
    nslots: usize,
    /// Counter for generated continuation names.
    gen: u32,
    /// The source function's return type.
    ret: CType,
}

/// One straight-line FIR binding produced while lowering an expression.
enum Pre {
    Unop(VarId, Unop, Atom),
    Binop(VarId, Binop, Atom, Atom),
    Load(VarId, Ty, Atom, Atom),
    Store(Atom, Atom, Atom),
    Alloc(VarId, Ty, Atom, Atom),
    AllocRaw(VarId, Atom),
    LoadRaw(VarId, u8, Atom, Atom),
    StoreRaw(u8, Atom, Atom, Atom),
    Len(VarId, Atom),
    Ext(VarId, Ty, String, Vec<Atom>),
}

/// What to do after a statement list ends.
#[derive(Debug, Clone)]
enum NextCont {
    /// Implicit `return 0`.
    Return,
    /// Tail-call a continuation function with `(frame, retk)`.
    Call(FunId),
}

struct Lowerer {
    pb: ProgramBuilder,
    user: HashMap<String, (FunId, Sig)>,
    externs: HashMap<&'static str, Sig>,
    hoist_counter: u32,
    rename_counter: u32,
}

/// The FIR type of a source type.
fn fir_ty(ty: &CType) -> Ty {
    match ty {
        CType::Int => Ty::Int,
        CType::Float => Ty::Float,
        CType::Bool => Ty::Bool,
        CType::Char => Ty::Char,
        CType::Str => Ty::Str,
        CType::Void => Ty::Unit,
        CType::Buffer => Ty::Raw,
        CType::Array(elem) => Ty::ptr(fir_ty(elem)),
    }
}

/// The closure type of return continuations.
fn retk_ty() -> Ty {
    Ty::Closure(vec![Ty::Any])
}

fn extern_sigs() -> HashMap<&'static str, Sig> {
    use CType::*;
    let mut m = HashMap::new();
    let mut add = |name: &'static str, params: Vec<CType>, ret: CType| {
        m.insert(name, Sig { params, ret });
    };
    add("print_int", vec![Int], Void);
    add("print_float", vec![Float], Void);
    add("print_str", vec![Str], Void);
    add("print_char", vec![Char], Void);
    add("clock_us", vec![], Int);
    add("rand_int", vec![Int], Int);
    add("int_to_str", vec![Int], Str);
    add("str_concat", vec![Str, Str], Str);
    add("str_len", vec![Str], Int);
    add("obj_create", vec![Int], Int);
    add("obj_read", vec![Int, Buffer, Int], Int);
    add("obj_write", vec![Int, Buffer, Int], Int);
    add("obj_set_fail_rate", vec![Int], Void);
    add("msg_send", vec![Int, Int, Array(Box::new(Float))], Int);
    add("msg_recv", vec![Int, Int, Array(Box::new(Float))], Int);
    add("node_id", vec![], Int);
    add("num_nodes", vec![], Int);
    add("inject_failure", vec![Int], Void);
    m
}

const BUILTINS: &[&str] = &[
    "speculate",
    "commit",
    "abort",
    "retry",
    "checkpoint",
    "suspend",
    "migrate",
    "alloc_int",
    "alloc_float",
    "alloc_buffer",
    "length",
    "peek",
    "poke",
    "int_of",
    "float_of",
];

impl Lowerer {
    fn new(unit: &Unit) -> Result<Self, CompileError> {
        let externs = extern_sigs();
        let mut lowerer = Lowerer {
            pb: ProgramBuilder::new(),
            user: HashMap::new(),
            externs,
            hoist_counter: 0,
            rename_counter: 0,
        };
        // Collect and declare user functions up front so calls can be
        // forward references and mutual recursion works.
        for f in &unit.funs {
            if lowerer.user.contains_key(&f.name) {
                return Err(CompileError::at(
                    f.pos,
                    format!("function `{}` is defined more than once", f.name),
                ));
            }
            if lowerer.externs.contains_key(f.name.as_str()) || BUILTINS.contains(&f.name.as_str())
            {
                return Err(CompileError::at(
                    f.pos,
                    format!("`{}` is a reserved runtime function name", f.name),
                ));
            }
            let sig = Sig {
                params: f.params.iter().map(|(t, _)| t.clone()).collect(),
                ret: f.ret.clone(),
            };
            let mut fir_params: Vec<(&str, Ty)> = Vec::new();
            let mut owned_names: Vec<String> = Vec::new();
            for (t, n) in &f.params {
                owned_names.push(n.clone());
                fir_params.push(("", fir_ty(t)));
                let last = fir_params.len() - 1;
                // Placeholder name fixed below (builder needs &str).
                fir_params[last].0 =
                    Box::leak(owned_names.last().unwrap().clone().into_boxed_str());
            }
            fir_params.push(("retk", retk_ty()));
            let (id, _) = lowerer.pb.declare(&f.name, &fir_params);
            lowerer.user.insert(f.name.clone(), (id, sig));
        }
        Ok(lowerer)
    }

    fn lower(mut self, unit: &Unit) -> Result<Program, CompileError> {
        // main() checks.
        let main = unit
            .funs
            .iter()
            .find(|f| f.name == "main")
            .ok_or_else(|| CompileError::general("program has no `main` function"))?;
        if !main.params.is_empty() {
            return Err(CompileError::at(main.pos, "`main` must take no parameters"));
        }

        for f in &unit.funs {
            self.lower_function(f)?;
        }

        // Synthetic halt continuation and entry point.
        let (halt_fn, halt_params) = self
            .pb
            .declare("__halt", &[("env", Ty::ptr(Ty::Any)), ("v", Ty::Any)]);
        self.pb.define(
            halt_fn,
            Expr::Halt {
                value: Atom::Var(halt_params[1]),
            },
        );
        let (start_fn, _) = self.pb.declare("__start", &[]);
        let k = self.pb.tmp();
        let main_id = self.user["main"].0;
        self.pb.define(
            start_fn,
            Expr::LetClosure {
                dst: k,
                fun: halt_fn,
                captured: vec![],
                arg_tys: vec![Ty::Any],
                body: Box::new(Expr::TailCall {
                    target: Atom::Fun(main_id),
                    args: vec![Atom::Var(k)],
                }),
            },
        );
        self.pb.set_entry(start_fn);
        Ok(self.pb.finish())
    }

    fn callee_kind(&self, name: &str) -> Option<Callee> {
        if self.user.contains_key(name) {
            Some(Callee::User)
        } else if self.externs.contains_key(name) {
            Some(Callee::Extern)
        } else if BUILTINS.contains(&name) {
            Some(Callee::Builtin)
        } else {
            None
        }
    }

    fn is_suspending_call(&self, name: &str) -> bool {
        self.user.contains_key(name) || name == "speculate"
    }

    // ------------------------------------------------------------------
    // Pre-pass 1: hoist user-function calls out of nested expressions
    // ------------------------------------------------------------------

    fn hoist_temp(&mut self) -> String {
        self.hoist_counter += 1;
        format!("__h{}", self.hoist_counter)
    }

    fn call_ret_type(&self, name: &str, pos: SourcePos) -> Result<CType, CompileError> {
        if name == "speculate" {
            return Ok(CType::Int);
        }
        self.user
            .get(name)
            .map(|(_, sig)| sig.ret.clone())
            .ok_or_else(|| CompileError::at(pos, format!("unknown function `{name}`")))
    }

    fn hoist_expr(
        &mut self,
        e: &CExpr,
        prefix: &mut Vec<Stmt>,
        top_allowed: bool,
    ) -> Result<CExpr, CompileError> {
        Ok(match e {
            CExpr::Call { name, args, pos } => {
                if matches!(
                    name.as_str(),
                    "commit" | "abort" | "retry" | "checkpoint" | "suspend" | "migrate"
                ) && !top_allowed
                {
                    return Err(CompileError::at(
                        *pos,
                        format!("`{name}` cannot be used inside an expression"),
                    ));
                }
                let hoisted_args = args
                    .iter()
                    .map(|a| self.hoist_expr(a, prefix, false))
                    .collect::<Result<Vec<_>, _>>()?;
                let call = CExpr::Call {
                    name: name.clone(),
                    args: hoisted_args,
                    pos: *pos,
                };
                if self.is_suspending_call(name) && !top_allowed {
                    let ty = self.call_ret_type(name, *pos)?;
                    if ty == CType::Void {
                        return Err(CompileError::at(
                            *pos,
                            format!("void function `{name}` used in an expression"),
                        ));
                    }
                    let tmp = self.hoist_temp();
                    prefix.push(Stmt::Decl {
                        ty,
                        name: tmp.clone(),
                        init: Some(call),
                        pos: *pos,
                    });
                    CExpr::Var(tmp)
                } else {
                    call
                }
            }
            CExpr::Binary { op, lhs, rhs, pos } => CExpr::Binary {
                op: *op,
                lhs: Box::new(self.hoist_expr(lhs, prefix, false)?),
                rhs: Box::new(self.hoist_expr(rhs, prefix, false)?),
                pos: *pos,
            },
            CExpr::Unary { op, operand, pos } => CExpr::Unary {
                op: *op,
                operand: Box::new(self.hoist_expr(operand, prefix, false)?),
                pos: *pos,
            },
            CExpr::Index { array, index, pos } => CExpr::Index {
                array: Box::new(self.hoist_expr(array, prefix, false)?),
                index: Box::new(self.hoist_expr(index, prefix, false)?),
                pos: *pos,
            },
            other => other.clone(),
        })
    }

    fn hoist_stmts(&mut self, stmts: &[Stmt]) -> Result<Vec<Stmt>, CompileError> {
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            let mut prefix = Vec::new();
            let rewritten = match stmt {
                Stmt::Decl {
                    ty,
                    name,
                    init,
                    pos,
                } => {
                    let init = init
                        .as_ref()
                        .map(|e| self.hoist_expr(e, &mut prefix, true))
                        .transpose()?;
                    Stmt::Decl {
                        ty: ty.clone(),
                        name: name.clone(),
                        init,
                        pos: *pos,
                    }
                }
                Stmt::Assign { name, value, pos } => Stmt::Assign {
                    name: name.clone(),
                    value: self.hoist_expr(value, &mut prefix, true)?,
                    pos: *pos,
                },
                Stmt::StoreIndex {
                    array,
                    index,
                    value,
                    pos,
                } => Stmt::StoreIndex {
                    array: array.clone(),
                    index: self.hoist_expr(index, &mut prefix, false)?,
                    value: self.hoist_expr(value, &mut prefix, false)?,
                    pos: *pos,
                },
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    pos,
                } => Stmt::If {
                    cond: self.hoist_expr(cond, &mut prefix, false)?,
                    then_branch: self.hoist_stmts(then_branch)?,
                    else_branch: self.hoist_stmts(else_branch)?,
                    pos: *pos,
                },
                Stmt::While { cond, body, pos } => {
                    if cond.contains_call_to(&|n| self.is_suspending_call(n)) {
                        return Err(CompileError::at(
                            *pos,
                            "calls to user functions (or speculate) are not supported in a \
                             `while` condition; compute the condition in the loop body instead",
                        ));
                    }
                    Stmt::While {
                        cond: cond.clone(),
                        body: self.hoist_stmts(body)?,
                        pos: *pos,
                    }
                }
                Stmt::Return { value, pos } => Stmt::Return {
                    value: value
                        .as_ref()
                        .map(|e| self.hoist_expr(e, &mut prefix, false))
                        .transpose()?,
                    pos: *pos,
                },
                Stmt::Expr(e) => Stmt::Expr(self.hoist_expr(e, &mut prefix, true)?),
                Stmt::Block(inner) => Stmt::Block(self.hoist_stmts(inner)?),
            };
            out.extend(prefix);
            out.push(rewritten);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Pre-pass 2: α-rename declarations so every variable is unique
    // ------------------------------------------------------------------

    fn rename_stmts(
        &mut self,
        stmts: &[Stmt],
        scopes: &mut Vec<HashMap<String, String>>,
    ) -> Result<Vec<Stmt>, CompileError> {
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(self.rename_stmt(stmt, scopes)?);
        }
        Ok(out)
    }

    fn resolve_name(
        scopes: &[HashMap<String, String>],
        name: &str,
        pos: SourcePos,
    ) -> Result<String, CompileError> {
        for scope in scopes.iter().rev() {
            if let Some(unique) = scope.get(name) {
                return Ok(unique.clone());
            }
        }
        Err(CompileError::at(pos, format!("unknown variable `{name}`")))
    }

    fn rename_expr(
        &mut self,
        e: &CExpr,
        scopes: &[HashMap<String, String>],
    ) -> Result<CExpr, CompileError> {
        Ok(match e {
            CExpr::Var(name) => CExpr::Var(Self::resolve_name(scopes, name, SourcePos::default())?),
            CExpr::Binary { op, lhs, rhs, pos } => CExpr::Binary {
                op: *op,
                lhs: Box::new(self.rename_expr(lhs, scopes)?),
                rhs: Box::new(self.rename_expr(rhs, scopes)?),
                pos: *pos,
            },
            CExpr::Unary { op, operand, pos } => CExpr::Unary {
                op: *op,
                operand: Box::new(self.rename_expr(operand, scopes)?),
                pos: *pos,
            },
            CExpr::Call { name, args, pos } => {
                if self.callee_kind(name).is_none() {
                    return Err(CompileError::at(*pos, format!("unknown function `{name}`")));
                }
                CExpr::Call {
                    name: name.clone(),
                    args: args
                        .iter()
                        .map(|a| self.rename_expr(a, scopes))
                        .collect::<Result<Vec<_>, _>>()?,
                    pos: *pos,
                }
            }
            CExpr::Index { array, index, pos } => CExpr::Index {
                array: Box::new(self.rename_expr(array, scopes)?),
                index: Box::new(self.rename_expr(index, scopes)?),
                pos: *pos,
            },
            other => other.clone(),
        })
    }

    fn rename_stmt(
        &mut self,
        stmt: &Stmt,
        scopes: &mut Vec<HashMap<String, String>>,
    ) -> Result<Stmt, CompileError> {
        Ok(match stmt {
            Stmt::Decl {
                ty,
                name,
                init,
                pos,
            } => {
                let init = init
                    .as_ref()
                    .map(|e| self.rename_expr(e, scopes))
                    .transpose()?;
                let scope = scopes.last_mut().expect("at least one scope");
                if scope.contains_key(name) {
                    return Err(CompileError::at(
                        *pos,
                        format!("variable `{name}` is already declared in this scope"),
                    ));
                }
                self.rename_counter += 1;
                let unique = format!("{name}@{}", self.rename_counter);
                scope.insert(name.clone(), unique.clone());
                Stmt::Decl {
                    ty: ty.clone(),
                    name: unique,
                    init,
                    pos: *pos,
                }
            }
            Stmt::Assign { name, value, pos } => Stmt::Assign {
                name: Self::resolve_name(scopes, name, *pos)?,
                value: self.rename_expr(value, scopes)?,
                pos: *pos,
            },
            Stmt::StoreIndex {
                array,
                index,
                value,
                pos,
            } => Stmt::StoreIndex {
                array: Self::resolve_name(scopes, array, *pos)?,
                index: self.rename_expr(index, scopes)?,
                value: self.rename_expr(value, scopes)?,
                pos: *pos,
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                pos,
            } => {
                let cond = self.rename_expr(cond, scopes)?;
                scopes.push(HashMap::new());
                let then_branch = self.rename_stmts(then_branch, scopes)?;
                scopes.pop();
                scopes.push(HashMap::new());
                let else_branch = self.rename_stmts(else_branch, scopes)?;
                scopes.pop();
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    pos: *pos,
                }
            }
            Stmt::While { cond, body, pos } => {
                let cond = self.rename_expr(cond, scopes)?;
                scopes.push(HashMap::new());
                let body = self.rename_stmts(body, scopes)?;
                scopes.pop();
                Stmt::While {
                    cond,
                    body,
                    pos: *pos,
                }
            }
            Stmt::Return { value, pos } => Stmt::Return {
                value: value
                    .as_ref()
                    .map(|e| self.rename_expr(e, scopes))
                    .transpose()?,
                pos: *pos,
            },
            Stmt::Expr(e) => Stmt::Expr(self.rename_expr(e, scopes)?),
            Stmt::Block(inner) => {
                scopes.push(HashMap::new());
                let inner = self.rename_stmts(inner, scopes)?;
                scopes.pop();
                Stmt::Block(inner)
            }
        })
    }

    // ------------------------------------------------------------------
    // Slot assignment
    // ------------------------------------------------------------------

    fn collect_slots(stmts: &[Stmt], slots: &mut HashMap<String, (usize, CType)>) {
        for stmt in stmts {
            match stmt {
                Stmt::Decl { ty, name, .. } => {
                    let slot = slots.len();
                    slots.insert(name.clone(), (slot, ty.clone()));
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    Self::collect_slots(then_branch, slots);
                    Self::collect_slots(else_branch, slots);
                }
                Stmt::While { body, .. } => Self::collect_slots(body, slots),
                Stmt::Block(inner) => Self::collect_slots(inner, slots),
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Function lowering
    // ------------------------------------------------------------------

    fn lower_function(&mut self, f: &FunDecl) -> Result<(), CompileError> {
        let (fun_id, param_vars) = {
            let (id, _) = self.user[&f.name];
            let def = self.pb.program().fun(id).expect("declared").clone();
            (id, def.params.iter().map(|(v, _)| *v).collect::<Vec<_>>())
        };

        // Pre-passes.
        let hoisted = self.hoist_stmts(&f.body)?;
        let mut scopes = vec![HashMap::new()];
        for (_, name) in &f.params {
            // Parameters keep their names (they are unique within the
            // parameter list by construction of the parser + this check).
            if scopes[0].insert(name.clone(), name.clone()).is_some() {
                return Err(CompileError::at(
                    f.pos,
                    format!("duplicate parameter `{name}` in `{}`", f.name),
                ));
            }
        }
        let renamed = self.rename_stmts(&hoisted, &mut scopes)?;

        // Frame layout: parameters first, then every declaration.
        let mut slots: HashMap<String, (usize, CType)> = HashMap::new();
        for (ty, name) in &f.params {
            let slot = slots.len();
            slots.insert(name.clone(), (slot, ty.clone()));
        }
        Self::collect_slots(&renamed, &mut slots);
        let nslots = slots.len().max(1);

        let mut st = FnState {
            fname: f.name.clone(),
            slots,
            nslots,
            gen: 0,
            ret: f.ret.clone(),
        };

        let frame = self.pb.var("frame");
        let retk = *param_vars.last().expect("retk parameter");
        let body_rest = self.lower_stmts(&mut st, &renamed, frame, retk, NextCont::Return)?;

        // Store parameters into their frame slots (innermost first when
        // wrapping, so iterate in reverse source order).
        let mut body = body_rest;
        for (i, (_, name)) in f.params.iter().enumerate().rev() {
            let (slot, _) = st.slots[name];
            body = Expr::Store {
                ptr: Atom::Var(frame),
                index: Atom::Int(slot as i64),
                value: Atom::Var(param_vars[i]),
                body: Box::new(body),
            };
        }
        let body = Expr::LetAlloc {
            dst: frame,
            elem: Ty::Any,
            len: Atom::Int(st.nslots as i64),
            init: Atom::Int(0),
            body: Box::new(body),
        };
        self.pb.define(fun_id, body);
        Ok(())
    }

    fn gen_name(&mut self, st: &mut FnState, kind: &str) -> String {
        st.gen += 1;
        format!("{}__{}{}", st.fname, kind, st.gen)
    }

    /// Declare a continuation function taking `(frame, retk)`.
    fn declare_cont(&mut self, st: &mut FnState, kind: &str) -> (FunId, VarId, VarId) {
        let name = self.gen_name(st, kind);
        let (id, params) = self
            .pb
            .declare(&name, &[("frame", Ty::ptr(Ty::Any)), ("retk", retk_ty())]);
        (id, params[0], params[1])
    }

    fn emit_next(&self, next: &NextCont, frame: VarId, retk: VarId) -> Expr {
        match next {
            NextCont::Return => Expr::TailCall {
                target: Atom::Var(retk),
                args: vec![Atom::Int(0)],
            },
            NextCont::Call(fun) => Expr::TailCall {
                target: Atom::Fun(*fun),
                args: vec![Atom::Var(frame), Atom::Var(retk)],
            },
        }
    }

    fn wrap_pre(pre: Vec<Pre>, tail: Expr) -> Expr {
        let mut expr = tail;
        for p in pre.into_iter().rev() {
            expr = match p {
                Pre::Unop(dst, op, arg) => Expr::LetUnop {
                    dst,
                    op,
                    arg,
                    body: Box::new(expr),
                },
                Pre::Binop(dst, op, lhs, rhs) => Expr::LetBinop {
                    dst,
                    op,
                    lhs,
                    rhs,
                    body: Box::new(expr),
                },
                Pre::Load(dst, ty, ptr, index) => Expr::LetLoad {
                    dst,
                    ty,
                    ptr,
                    index,
                    body: Box::new(expr),
                },
                Pre::Store(ptr, index, value) => Expr::Store {
                    ptr,
                    index,
                    value,
                    body: Box::new(expr),
                },
                Pre::Alloc(dst, elem, len, init) => Expr::LetAlloc {
                    dst,
                    elem,
                    len,
                    init,
                    body: Box::new(expr),
                },
                Pre::AllocRaw(dst, size) => Expr::LetAllocRaw {
                    dst,
                    size,
                    body: Box::new(expr),
                },
                Pre::LoadRaw(dst, width, ptr, offset) => Expr::LetLoadRaw {
                    dst,
                    width,
                    ptr,
                    offset,
                    body: Box::new(expr),
                },
                Pre::StoreRaw(width, ptr, offset, value) => Expr::StoreRaw {
                    width,
                    ptr,
                    offset,
                    value,
                    body: Box::new(expr),
                },
                Pre::Len(dst, ptr) => Expr::LetLen {
                    dst,
                    ptr,
                    body: Box::new(expr),
                },
                Pre::Ext(dst, ty, name, args) => Expr::LetExt {
                    dst,
                    ty,
                    name,
                    args,
                    body: Box::new(expr),
                },
            };
        }
        expr
    }

    // ------------------------------------------------------------------
    // Expression lowering (call-free expressions)
    // ------------------------------------------------------------------

    fn lower_value(
        &mut self,
        st: &FnState,
        e: &CExpr,
        frame: VarId,
        pre: &mut Vec<Pre>,
    ) -> Result<(Atom, CType), CompileError> {
        Ok(match e {
            CExpr::Int(v) => (Atom::Int(*v), CType::Int),
            CExpr::Float(v) => (Atom::Float(*v), CType::Float),
            CExpr::Bool(v) => (Atom::Bool(*v), CType::Bool),
            CExpr::Char(c) => (Atom::Char(*c), CType::Char),
            CExpr::Str(s) => (Atom::Str(s.clone()), CType::Str),
            CExpr::Var(name) => {
                let (slot, ty) = st.slots.get(name).cloned().ok_or_else(|| {
                    CompileError::general(format!("internal: unresolved variable `{name}`"))
                })?;
                let dst = self.pb.tmp();
                pre.push(Pre::Load(
                    dst,
                    fir_ty(&ty),
                    Atom::Var(frame),
                    Atom::Int(slot as i64),
                ));
                (Atom::Var(dst), ty)
            }
            CExpr::Unary { op, operand, pos } => {
                let (a, ty) = self.lower_value(st, operand, frame, pre)?;
                let dst = self.pb.tmp();
                let (fir_op, rty) = match (op, &ty) {
                    (UnOp::Neg, CType::Int) => (Unop::Neg, CType::Int),
                    (UnOp::Neg, CType::Float) => (Unop::FNeg, CType::Float),
                    (UnOp::Not, CType::Bool) => (Unop::Not, CType::Bool),
                    (UnOp::BitNot, CType::Int) => (Unop::BNot, CType::Int),
                    _ => {
                        return Err(CompileError::at(
                            *pos,
                            format!("operator cannot be applied to `{}`", ty.name()),
                        ))
                    }
                };
                pre.push(Pre::Unop(dst, fir_op, a));
                (Atom::Var(dst), rty)
            }
            CExpr::Binary { op, lhs, rhs, pos } => {
                let (a, lty) = self.lower_value(st, lhs, frame, pre)?;
                let (b, _rty) = self.lower_value(st, rhs, frame, pre)?;
                let dst = self.pb.tmp();
                let (fir_op, result) = match op {
                    BinOp::Add => (Binop::Add, lty.clone()),
                    BinOp::Sub => (Binop::Sub, lty.clone()),
                    BinOp::Mul => (Binop::Mul, lty.clone()),
                    BinOp::Div => (Binop::Div, lty.clone()),
                    BinOp::Rem => (Binop::Rem, CType::Int),
                    BinOp::Eq => (Binop::Eq, CType::Bool),
                    BinOp::Ne => (Binop::Ne, CType::Bool),
                    BinOp::Lt => (Binop::Lt, CType::Bool),
                    BinOp::Le => (Binop::Le, CType::Bool),
                    BinOp::Gt => (Binop::Gt, CType::Bool),
                    BinOp::Ge => (Binop::Ge, CType::Bool),
                    BinOp::And => (Binop::BAnd, CType::Bool),
                    BinOp::Or => (Binop::BOr, CType::Bool),
                    BinOp::BitAnd => (Binop::BAnd, CType::Int),
                    BinOp::BitOr => (Binop::BOr, CType::Int),
                    BinOp::BitXor => (Binop::BXor, CType::Int),
                    BinOp::Shl => (Binop::Shl, CType::Int),
                    BinOp::Shr => (Binop::Shr, CType::Int),
                };
                let _ = pos;
                pre.push(Pre::Binop(dst, fir_op, a, b));
                (Atom::Var(dst), result)
            }
            CExpr::Index { array, index, pos } => {
                let (arr, arr_ty) = self.lower_value(st, array, frame, pre)?;
                let (idx, _) = self.lower_value(st, index, frame, pre)?;
                match arr_ty {
                    CType::Array(elem) => {
                        let dst = self.pb.tmp();
                        pre.push(Pre::Load(dst, fir_ty(&elem), arr, idx));
                        (Atom::Var(dst), *elem)
                    }
                    CType::Buffer => {
                        return Err(CompileError::at(
                            *pos,
                            "use `peek(buffer, offset)` / `poke(buffer, offset, value)` to \
                             access raw buffers",
                        ))
                    }
                    other => {
                        return Err(CompileError::at(
                            *pos,
                            format!("cannot index a value of type `{}`", other.name()),
                        ))
                    }
                }
            }
            CExpr::Call { name, args, pos } => {
                self.lower_simple_call(st, name, args, *pos, frame, pre)?
            }
        })
    }

    /// Lower a call that does not suspend: externs and builtins that map to
    /// straight-line FIR.
    fn lower_simple_call(
        &mut self,
        st: &FnState,
        name: &str,
        args: &[CExpr],
        pos: SourcePos,
        frame: VarId,
        pre: &mut Vec<Pre>,
    ) -> Result<(Atom, CType), CompileError> {
        let check_arity = |expected: usize| -> Result<(), CompileError> {
            if args.len() != expected {
                Err(CompileError::at(
                    pos,
                    format!(
                        "`{name}` expects {expected} argument(s), found {}",
                        args.len()
                    ),
                ))
            } else {
                Ok(())
            }
        };
        match name {
            "alloc_int" | "alloc_float" => {
                check_arity(1)?;
                let (len, _) = self.lower_value(st, &args[0], frame, pre)?;
                let dst = self.pb.tmp();
                let (elem, init, cty) = if name == "alloc_int" {
                    (Ty::Int, Atom::Int(0), CType::Array(Box::new(CType::Int)))
                } else {
                    (
                        Ty::Float,
                        Atom::Float(0.0),
                        CType::Array(Box::new(CType::Float)),
                    )
                };
                pre.push(Pre::Alloc(dst, elem, len, init));
                Ok((Atom::Var(dst), cty))
            }
            "alloc_buffer" => {
                check_arity(1)?;
                let (size, _) = self.lower_value(st, &args[0], frame, pre)?;
                let dst = self.pb.tmp();
                pre.push(Pre::AllocRaw(dst, size));
                Ok((Atom::Var(dst), CType::Buffer))
            }
            "length" => {
                check_arity(1)?;
                let (ptr, _) = self.lower_value(st, &args[0], frame, pre)?;
                let dst = self.pb.tmp();
                pre.push(Pre::Len(dst, ptr));
                Ok((Atom::Var(dst), CType::Int))
            }
            "int_of" => {
                check_arity(1)?;
                let (a, _) = self.lower_value(st, &args[0], frame, pre)?;
                let dst = self.pb.tmp();
                pre.push(Pre::Unop(dst, Unop::IntOfFloat, a));
                Ok((Atom::Var(dst), CType::Int))
            }
            "float_of" => {
                check_arity(1)?;
                let (a, _) = self.lower_value(st, &args[0], frame, pre)?;
                let dst = self.pb.tmp();
                pre.push(Pre::Unop(dst, Unop::FloatOfInt, a));
                Ok((Atom::Var(dst), CType::Float))
            }
            "peek" => {
                check_arity(2)?;
                let (ptr, _) = self.lower_value(st, &args[0], frame, pre)?;
                let (off, _) = self.lower_value(st, &args[1], frame, pre)?;
                let dst = self.pb.tmp();
                pre.push(Pre::LoadRaw(dst, 1, ptr, off));
                Ok((Atom::Var(dst), CType::Int))
            }
            "poke" => {
                check_arity(3)?;
                let (ptr, _) = self.lower_value(st, &args[0], frame, pre)?;
                let (off, _) = self.lower_value(st, &args[1], frame, pre)?;
                let (val, _) = self.lower_value(st, &args[2], frame, pre)?;
                pre.push(Pre::StoreRaw(1, ptr, off, val));
                Ok((Atom::Unit, CType::Void))
            }
            _ => {
                if let Some(sig) = self.externs.get(name).cloned() {
                    check_arity(sig.params.len())?;
                    let mut atoms = Vec::with_capacity(args.len());
                    for a in args {
                        atoms.push(self.lower_value(st, a, frame, pre)?.0);
                    }
                    let dst = self.pb.tmp();
                    pre.push(Pre::Ext(dst, fir_ty(&sig.ret), name.to_owned(), atoms));
                    Ok((Atom::Var(dst), sig.ret))
                } else if self.user.contains_key(name) || name == "speculate" {
                    Err(CompileError::at(
                        pos,
                        format!("internal: call to `{name}` was not hoisted out of an expression"),
                    ))
                } else {
                    Err(CompileError::at(pos, format!("unknown function `{name}`")))
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Statement lowering
    // ------------------------------------------------------------------

    fn slot_of(
        &self,
        st: &FnState,
        name: &str,
        pos: SourcePos,
    ) -> Result<(usize, CType), CompileError> {
        st.slots
            .get(name)
            .cloned()
            .ok_or_else(|| CompileError::at(pos, format!("unknown variable `{name}`")))
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_user_call_suspension(
        &mut self,
        st: &mut FnState,
        callee: &str,
        args: &[CExpr],
        dest_slot: Option<usize>,
        rest: &[Stmt],
        frame: VarId,
        retk: VarId,
        next: NextCont,
        pos: SourcePos,
    ) -> Result<Expr, CompileError> {
        let (callee_id, sig) = self
            .user
            .get(callee)
            .cloned()
            .ok_or_else(|| CompileError::at(pos, format!("unknown function `{callee}`")))?;
        if sig.params.len() != args.len() {
            return Err(CompileError::at(
                pos,
                format!(
                    "`{callee}` expects {} argument(s), found {}",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        // The return continuation: (env, ret) — env captures frame and retk.
        let name = self.gen_name(st, "ret");
        let (ret_cont, ret_params) = self
            .pb
            .declare(&name, &[("env", Ty::ptr(Ty::Any)), ("ret", Ty::Any)]);
        let env_p = ret_params[0];
        let ret_p = ret_params[1];
        let frame2 = self.pb.var("frame");
        let retk2 = self.pb.var("retk");
        let rest_expr = self.lower_stmts(st, rest, frame2, retk2, next)?;
        let after_store = if let Some(slot) = dest_slot {
            Expr::Store {
                ptr: Atom::Var(frame2),
                index: Atom::Int(slot as i64),
                value: Atom::Var(ret_p),
                body: Box::new(rest_expr),
            }
        } else {
            rest_expr
        };
        let cont_body = Expr::LetLoad {
            dst: frame2,
            ty: Ty::ptr(Ty::Any),
            ptr: Atom::Var(env_p),
            index: Atom::Int(1),
            body: Box::new(Expr::LetLoad {
                dst: retk2,
                ty: retk_ty(),
                ptr: Atom::Var(env_p),
                index: Atom::Int(2),
                body: Box::new(after_store),
            }),
        };
        self.pb.define(ret_cont, cont_body);

        // The call site.
        let mut pre = Vec::new();
        let mut atoms = Vec::with_capacity(args.len() + 1);
        for a in args {
            atoms.push(self.lower_value(st, a, frame, &mut pre)?.0);
        }
        let k = self.pb.tmp();
        atoms.push(Atom::Var(k));
        let call = Expr::LetClosure {
            dst: k,
            fun: ret_cont,
            captured: vec![Atom::Var(frame), Atom::Var(retk)],
            arg_tys: vec![Ty::Any],
            body: Box::new(Expr::TailCall {
                target: Atom::Fun(callee_id),
                args: atoms,
            }),
        };
        Ok(Self::wrap_pre(pre, call))
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_speculate_suspension(
        &mut self,
        st: &mut FnState,
        dest_slot: Option<usize>,
        rest: &[Stmt],
        frame: VarId,
        retk: VarId,
        next: NextCont,
    ) -> Result<Expr, CompileError> {
        let name = self.gen_name(st, "spec");
        let (spec_cont, params) = self.pb.declare(
            &name,
            &[
                ("c", Ty::Int),
                ("frame", Ty::ptr(Ty::Any)),
                ("retk", retk_ty()),
            ],
        );
        let c_p = params[0];
        let frame_p = params[1];
        let retk_p = params[2];
        let rest_expr = self.lower_stmts(st, rest, frame_p, retk_p, next)?;
        let body = if let Some(slot) = dest_slot {
            Expr::Store {
                ptr: Atom::Var(frame_p),
                index: Atom::Int(slot as i64),
                value: Atom::Var(c_p),
                body: Box::new(rest_expr),
            }
        } else {
            rest_expr
        };
        self.pb.define(spec_cont, body);
        Ok(Expr::Speculate {
            fun: Atom::Fun(spec_cont),
            args: vec![Atom::Var(frame), Atom::Var(retk)],
        })
    }

    fn lower_stmts(
        &mut self,
        st: &mut FnState,
        stmts: &[Stmt],
        frame: VarId,
        retk: VarId,
        next: NextCont,
    ) -> Result<Expr, CompileError> {
        let Some((stmt, rest)) = stmts.split_first() else {
            return Ok(self.emit_next(&next, frame, retk));
        };
        match stmt {
            Stmt::Decl { name, pos, .. } | Stmt::Assign { name, pos, .. } => {
                // Unify: Decl-with-init and Assign store a value into a slot;
                // a Decl without an initialiser leaves the default 0.
                let init = match stmt {
                    Stmt::Decl { init, .. } => init.clone(),
                    Stmt::Assign { value, .. } => Some(value.clone()),
                    _ => unreachable!(),
                };
                let (slot, _ty) = self.slot_of(st, name, *pos)?;
                match init {
                    None => self.lower_stmts(st, rest, frame, retk, next),
                    Some(CExpr::Call {
                        name: callee,
                        args,
                        pos,
                    }) if self.user.contains_key(&callee) => self.lower_user_call_suspension(
                        st,
                        &callee,
                        &args,
                        Some(slot),
                        rest,
                        frame,
                        retk,
                        next,
                        pos,
                    ),
                    Some(CExpr::Call {
                        name: callee,
                        args,
                        pos,
                    }) if callee == "speculate" => {
                        if !args.is_empty() {
                            return Err(CompileError::at(pos, "`speculate` takes no arguments"));
                        }
                        self.lower_speculate_suspension(st, Some(slot), rest, frame, retk, next)
                    }
                    Some(value) => {
                        let mut pre = Vec::new();
                        let (atom, _vty) = self.lower_value(st, &value, frame, &mut pre)?;
                        pre.push(Pre::Store(Atom::Var(frame), Atom::Int(slot as i64), atom));
                        let rest_expr = self.lower_stmts(st, rest, frame, retk, next)?;
                        Ok(Self::wrap_pre(pre, rest_expr))
                    }
                }
            }
            Stmt::StoreIndex {
                array,
                index,
                value,
                pos,
            } => {
                let (slot, arr_ty) = self.slot_of(st, array, *pos)?;
                let mut pre = Vec::new();
                let arr = self.pb.tmp();
                pre.push(Pre::Load(
                    arr,
                    fir_ty(&arr_ty),
                    Atom::Var(frame),
                    Atom::Int(slot as i64),
                ));
                let (idx, _) = self.lower_value(st, index, frame, &mut pre)?;
                let (val, _) = self.lower_value(st, value, frame, &mut pre)?;
                match arr_ty {
                    CType::Array(_) => pre.push(Pre::Store(Atom::Var(arr), idx, val)),
                    CType::Buffer => {
                        return Err(CompileError::at(
                            *pos,
                            "use `poke(buffer, offset, value)` to write raw buffers",
                        ))
                    }
                    other => {
                        return Err(CompileError::at(
                            *pos,
                            format!("cannot index a value of type `{}`", other.name()),
                        ))
                    }
                }
                let rest_expr = self.lower_stmts(st, rest, frame, retk, next)?;
                Ok(Self::wrap_pre(pre, rest_expr))
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let branch_next = if rest.is_empty() {
                    next.clone()
                } else {
                    let (join, frame_p, retk_p) = self.declare_cont(st, "join");
                    let join_body = self.lower_stmts(st, rest, frame_p, retk_p, next)?;
                    self.pb.define(join, join_body);
                    NextCont::Call(join)
                };
                let mut pre = Vec::new();
                let (cond_atom, _) = self.lower_value(st, cond, frame, &mut pre)?;
                let then_expr =
                    self.lower_stmts(st, then_branch, frame, retk, branch_next.clone())?;
                let else_expr = self.lower_stmts(st, else_branch, frame, retk, branch_next)?;
                Ok(Self::wrap_pre(
                    pre,
                    Expr::If {
                        cond: cond_atom,
                        then_: Box::new(then_expr),
                        else_: Box::new(else_expr),
                    },
                ))
            }
            Stmt::While { cond, body, .. } => {
                let exit_next = if rest.is_empty() {
                    next.clone()
                } else {
                    let (after, frame_p, retk_p) = self.declare_cont(st, "after");
                    let after_body = self.lower_stmts(st, rest, frame_p, retk_p, next)?;
                    self.pb.define(after, after_body);
                    NextCont::Call(after)
                };
                let (loop_fun, frame_p, retk_p) = self.declare_cont(st, "loop");
                let mut pre = Vec::new();
                let (cond_atom, _) = self.lower_value(st, cond, frame_p, &mut pre)?;
                let body_expr =
                    self.lower_stmts(st, body, frame_p, retk_p, NextCont::Call(loop_fun))?;
                let exit_expr = self.emit_next(&exit_next, frame_p, retk_p);
                let loop_body = Self::wrap_pre(
                    pre,
                    Expr::If {
                        cond: cond_atom,
                        then_: Box::new(body_expr),
                        else_: Box::new(exit_expr),
                    },
                );
                self.pb.define(loop_fun, loop_body);
                Ok(Expr::TailCall {
                    target: Atom::Fun(loop_fun),
                    args: vec![Atom::Var(frame), Atom::Var(retk)],
                })
            }
            Stmt::Return { value, .. } => {
                let mut pre = Vec::new();
                let atom = match value {
                    Some(e) => self.lower_value(st, e, frame, &mut pre)?.0,
                    None => Atom::Int(0),
                };
                let _ = &st.ret;
                Ok(Self::wrap_pre(
                    pre,
                    Expr::TailCall {
                        target: Atom::Var(retk),
                        args: vec![atom],
                    },
                ))
            }
            Stmt::Block(inner) => {
                let combined: Vec<Stmt> = inner.iter().chain(rest.iter()).cloned().collect();
                self.lower_stmts(st, &combined, frame, retk, next)
            }
            Stmt::Expr(e) => self.lower_expr_stmt(st, e, rest, frame, retk, next),
        }
    }

    fn lower_expr_stmt(
        &mut self,
        st: &mut FnState,
        e: &CExpr,
        rest: &[Stmt],
        frame: VarId,
        retk: VarId,
        next: NextCont,
    ) -> Result<Expr, CompileError> {
        if let CExpr::Call { name, args, pos } = e {
            if self.user.contains_key(name) {
                return self.lower_user_call_suspension(
                    st, name, args, None, rest, frame, retk, next, *pos,
                );
            }
            match name.as_str() {
                "speculate" => {
                    return self.lower_speculate_suspension(st, None, rest, frame, retk, next)
                }
                "commit" => {
                    if args.len() != 1 {
                        return Err(CompileError::at(*pos, "`commit` expects one argument"));
                    }
                    let mut pre = Vec::new();
                    let (level, _) = self.lower_value(st, &args[0], frame, &mut pre)?;
                    let (cont, frame_p, retk_p) = self.declare_cont(st, "cont");
                    let cont_body = self.lower_stmts(st, rest, frame_p, retk_p, next)?;
                    self.pb.define(cont, cont_body);
                    return Ok(Self::wrap_pre(
                        pre,
                        Expr::Commit {
                            level,
                            fun: Atom::Fun(cont),
                            args: vec![Atom::Var(frame), Atom::Var(retk)],
                        },
                    ));
                }
                "abort" | "retry" => {
                    if args.len() != 1 {
                        return Err(CompileError::at(
                            *pos,
                            format!("`{name}` expects one argument"),
                        ));
                    }
                    let mut pre = Vec::new();
                    let (level, _) = self.lower_value(st, &args[0], frame, &mut pre)?;
                    let code = if name == "abort" {
                        Atom::Int(0)
                    } else {
                        level.clone()
                    };
                    return Ok(Self::wrap_pre(pre, Expr::Rollback { level, code }));
                }
                "checkpoint" | "suspend" | "migrate" => {
                    if args.len() != 1 {
                        return Err(CompileError::at(
                            *pos,
                            format!("`{name}` expects one argument"),
                        ));
                    }
                    let scheme = match name.as_str() {
                        "checkpoint" => "checkpoint",
                        "suspend" => "suspend",
                        _ => "migrate",
                    };
                    let mut pre = Vec::new();
                    let (target_atom, target_ty) =
                        self.lower_value(st, &args[0], frame, &mut pre)?;
                    if target_ty != CType::Str {
                        return Err(CompileError::at(
                            *pos,
                            format!("`{name}` expects a string argument"),
                        ));
                    }
                    let target = match target_atom {
                        Atom::Str(s) => Atom::Str(format!("{scheme}://{s}")),
                        other => {
                            let dst = self.pb.tmp();
                            pre.push(Pre::Ext(
                                dst,
                                Ty::Str,
                                "str_concat".to_owned(),
                                vec![Atom::Str(format!("{scheme}://")), other],
                            ));
                            Atom::Var(dst)
                        }
                    };
                    let label = self.pb.label();
                    let (cont, frame_p, retk_p) = self.declare_cont(st, "mig");
                    let cont_body = self.lower_stmts(st, rest, frame_p, retk_p, next)?;
                    self.pb.define(cont, cont_body);
                    return Ok(Self::wrap_pre(
                        pre,
                        Expr::Migrate {
                            label,
                            target,
                            fun: Atom::Fun(cont),
                            args: vec![Atom::Var(frame), Atom::Var(retk)],
                        },
                    ));
                }
                _ => {}
            }
        }
        // Any other expression statement: evaluate for effect and continue.
        let mut pre = Vec::new();
        let _ = self.lower_value(st, e, frame, &mut pre)?;
        let rest_expr = self.lower_stmts(st, rest, frame, retk, next)?;
        Ok(Self::wrap_pre(pre, rest_expr))
    }
}
