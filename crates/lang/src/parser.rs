//! Recursive-descent parser for MojaveC.

use crate::ast::{BinOp, CType, Expr, FunDecl, Stmt, UnOp, Unit};
use crate::error::{CompileError, SourcePos};
use crate::token::{Tok, Token};

/// Parse a token stream into a translation unit.
pub fn parse(tokens: &[Token]) -> Result<Unit, CompileError> {
    let mut parser = Parser { tokens, pos: 0 };
    let mut unit = Unit::default();
    while !parser.at_end() {
        unit.funs.push(parser.fun_decl()?);
    }
    if unit.funs.is_empty() {
        return Err(CompileError::general("source contains no functions"));
    }
    Ok(unit)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn here(&self) -> SourcePos {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.pos)
            .unwrap_or_default()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> CompileError {
        CompileError::at(self.here(), message)
    }

    fn expect(&mut self, tok: Tok) -> Result<(), CompileError> {
        match self.peek() {
            Some(t) if *t == tok => {
                self.bump();
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected `{tok}`, found `{t}`"))),
            None => Err(self.error(format!("expected `{tok}`, found end of input"))),
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().cloned() {
            Some(Tok::Ident(name)) => {
                self.bump();
                Ok(name)
            }
            Some(t) => Err(self.error(format!("expected an identifier, found `{t}`"))),
            None => Err(self.error("expected an identifier, found end of input")),
        }
    }

    // ------------------------------------------------------------------
    // Types and functions
    // ------------------------------------------------------------------

    fn is_type_start(tok: &Tok) -> bool {
        matches!(
            tok,
            Tok::KwInt
                | Tok::KwFloat
                | Tok::KwBool
                | Tok::KwChar
                | Tok::KwString
                | Tok::KwVoid
                | Tok::KwBuffer
        )
    }

    fn ctype(&mut self) -> Result<CType, CompileError> {
        let base = match self.peek() {
            Some(Tok::KwInt) => CType::Int,
            Some(Tok::KwFloat) => CType::Float,
            Some(Tok::KwBool) => CType::Bool,
            Some(Tok::KwChar) => CType::Char,
            Some(Tok::KwString) => CType::Str,
            Some(Tok::KwVoid) => CType::Void,
            Some(Tok::KwBuffer) => CType::Buffer,
            Some(t) => return Err(self.error(format!("expected a type, found `{t}`"))),
            None => return Err(self.error("expected a type, found end of input")),
        };
        self.bump();
        let mut ty = base;
        while self.peek() == Some(&Tok::LBracket) && self.peek2() == Some(&Tok::RBracket) {
            self.bump();
            self.bump();
            ty = CType::Array(Box::new(ty));
        }
        Ok(ty)
    }

    fn fun_decl(&mut self) -> Result<FunDecl, CompileError> {
        let pos = self.here();
        let ret = self.ctype()?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let ty = self.ctype()?;
                let pname = self.ident()?;
                params.push((ty, pname));
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(FunDecl {
            ret,
            name,
            params,
            body,
            pos,
        })
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.at_end() {
                return Err(self.error("unterminated block: expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        match self.peek() {
            Some(t) if Self::is_type_start(t) => {
                let ty = self.ctype()?;
                let name = self.ident()?;
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Decl {
                    ty,
                    name,
                    init,
                    pos,
                })
            }
            Some(Tok::KwIf) => self.if_stmt(),
            Some(Tok::KwWhile) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, pos })
            }
            Some(Tok::KwFor) => self.for_stmt(),
            Some(Tok::KwReturn) => {
                self.bump();
                let value = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return { value, pos })
            }
            Some(Tok::LBrace) => Ok(Stmt::Block(self.block()?)),
            Some(Tok::Ident(_)) => self.assign_or_expr_stmt(),
            Some(t) => Err(self.error(format!("unexpected `{t}` at the start of a statement"))),
            None => Err(self.error("unexpected end of input in a statement")),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        self.expect(Tok::KwIf)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then_branch = self.block()?;
        let else_branch = if self.eat(&Tok::KwElse) {
            if self.peek() == Some(&Tok::KwIf) {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
            pos,
        })
    }

    /// `for (init; cond; step) body` desugars to
    /// `{ init; while (cond) { body; step; } }`.
    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        self.expect(Tok::KwFor)?;
        self.expect(Tok::LParen)?;
        let init = if self.peek() == Some(&Tok::Semi) {
            self.bump();
            None
        } else {
            Some(self.simple_stmt()?)
        };
        let cond = if self.peek() == Some(&Tok::Semi) {
            Expr::Bool(true)
        } else {
            self.expr()?
        };
        self.expect(Tok::Semi)?;
        let step = if self.peek() == Some(&Tok::RParen) {
            None
        } else {
            Some(self.simple_stmt_no_semi()?)
        };
        self.expect(Tok::RParen)?;
        let mut body = self.block()?;
        if let Some(step) = step {
            body.push(step);
        }
        let mut outer = Vec::new();
        if let Some(init) = init {
            outer.push(init);
        }
        outer.push(Stmt::While { cond, body, pos });
        Ok(Stmt::Block(outer))
    }

    /// A declaration or assignment followed by `;` (for `for` initialisers).
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let stmt = self.simple_stmt_no_semi()?;
        self.expect(Tok::Semi)?;
        Ok(stmt)
    }

    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        match self.peek() {
            Some(t) if Self::is_type_start(t) => {
                let ty = self.ctype()?;
                let name = self.ident()?;
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                Ok(Stmt::Decl {
                    ty,
                    name,
                    init,
                    pos,
                })
            }
            Some(Tok::Ident(_)) => {
                let name = self.ident()?;
                if self.eat(&Tok::LBracket) {
                    let index = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    self.expect(Tok::Assign)?;
                    let value = self.expr()?;
                    Ok(Stmt::StoreIndex {
                        array: name,
                        index,
                        value,
                        pos,
                    })
                } else if self.eat(&Tok::Assign) {
                    let value = self.expr()?;
                    Ok(Stmt::Assign { name, value, pos })
                } else if self.peek() == Some(&Tok::LParen) {
                    let call = self.call_after_name(name, pos)?;
                    Ok(Stmt::Expr(call))
                } else {
                    Err(self.error("expected `=`, `[` or `(` after identifier"))
                }
            }
            Some(t) => Err(self.error(format!("unexpected `{t}`"))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn assign_or_expr_stmt(&mut self) -> Result<Stmt, CompileError> {
        let stmt = self.simple_stmt_no_semi()?;
        self.expect(Tok::Semi)?;
        Ok(stmt)
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn binary_level<F>(&mut self, next: F, table: &[(Tok, BinOp)]) -> Result<Expr, CompileError>
    where
        F: Fn(&mut Self) -> Result<Expr, CompileError>,
    {
        let mut lhs = next(self)?;
        loop {
            let pos = self.here();
            let Some(current) = self.peek() else { break };
            let Some((_, op)) = table.iter().find(|(t, _)| t == current) else {
                break;
            };
            let op = *op;
            self.bump();
            let rhs = next(self)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::and_expr, &[(Tok::OrOr, BinOp::Or)])
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::bitor_expr, &[(Tok::AndAnd, BinOp::And)])
    }

    fn bitor_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::bitxor_expr, &[(Tok::Pipe, BinOp::BitOr)])
    }

    fn bitxor_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::bitand_expr, &[(Tok::Caret, BinOp::BitXor)])
    }

    fn bitand_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::equality_expr, &[(Tok::Amp, BinOp::BitAnd)])
    }

    fn equality_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::relational_expr,
            &[(Tok::EqEq, BinOp::Eq), (Tok::NotEq, BinOp::Ne)],
        )
    }

    fn relational_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::shift_expr,
            &[
                (Tok::Lt, BinOp::Lt),
                (Tok::Le, BinOp::Le),
                (Tok::Gt, BinOp::Gt),
                (Tok::Ge, BinOp::Ge),
            ],
        )
    }

    fn shift_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::additive_expr,
            &[(Tok::Shl, BinOp::Shl), (Tok::Shr, BinOp::Shr)],
        )
    }

    fn additive_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::multiplicative_expr,
            &[(Tok::Plus, BinOp::Add), (Tok::Minus, BinOp::Sub)],
        )
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::unary_expr,
            &[
                (Tok::Star, BinOp::Mul),
                (Tok::Slash, BinOp::Div),
                (Tok::Percent, BinOp::Rem),
            ],
        )
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let pos = self.here();
        let op = match self.peek() {
            Some(Tok::Minus) => Some(UnOp::Neg),
            Some(Tok::Bang) => Some(UnOp::Not),
            Some(Tok::Tilde) => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary_expr()?;
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
                pos,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut expr = self.primary_expr()?;
        loop {
            let pos = self.here();
            if self.eat(&Tok::LBracket) {
                let index = self.expr()?;
                self.expect(Tok::RBracket)?;
                expr = Expr::Index {
                    array: Box::new(expr),
                    index: Box::new(index),
                    pos,
                };
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn call_after_name(&mut self, name: String, pos: SourcePos) -> Result<Expr, CompileError> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                args.push(self.expr()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma)?;
            }
        }
        Ok(Expr::Call { name, args, pos })
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let pos = self.here();
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Some(Tok::Float(v)) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            Some(Tok::Str(s)) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Some(Tok::Char(c)) => {
                self.bump();
                Ok(Expr::Char(c))
            }
            Some(Tok::KwTrue) => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Some(Tok::KwFalse) => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                if self.peek() == Some(&Tok::LParen) {
                    self.call_after_name(name, pos)
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(t) => Err(self.error(format!("unexpected `{t}` in an expression"))),
            None => Err(self.error("unexpected end of input in an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_minimal_main() {
        let unit = parse_src("int main() { return 0; }");
        assert_eq!(unit.funs.len(), 1);
        assert_eq!(unit.funs[0].name, "main");
        assert_eq!(unit.funs[0].ret, CType::Int);
        assert!(unit.funs[0].params.is_empty());
    }

    #[test]
    fn parses_params_arrays_and_buffers() {
        let unit = parse_src("int f(int[] a, buffer b, float x) { return 0; }");
        let f = &unit.funs[0];
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].0, CType::Array(Box::new(CType::Int)));
        assert_eq!(f.params[1].0, CType::Buffer);
    }

    #[test]
    fn parses_figure_one_transfer_shape() {
        let src = r#"
            int transfer(int obj1, int obj2, int k) {
                buffer buf1 = alloc_buffer(k);
                buffer buf2 = alloc_buffer(k);
                int specid = speculate();
                if (specid > 0) {
                    if (obj_read(obj1, buf1, k) != k) { abort(specid); }
                    if (obj_read(obj2, buf2, k) != k) { abort(specid); }
                    if (obj_write(obj1, buf2, k) != k) { abort(specid); }
                    if (obj_write(obj2, buf1, k) != k) { abort(specid); }
                    commit(specid);
                    return 1;
                }
                return 0;
            }
        "#;
        let unit = parse_src(src);
        assert_eq!(unit.funs[0].name, "transfer");
        // Declaration + declaration + declaration + if + return.
        assert_eq!(unit.funs[0].body.len(), 5);
    }

    #[test]
    fn parses_loops_and_desugars_for() {
        let src = r#"
            int main() {
                int acc = 0;
                for (int i = 0; i < 10; i = i + 1) {
                    acc = acc + i;
                }
                while (acc > 100) { acc = acc - 1; }
                return acc;
            }
        "#;
        let unit = parse_src(src);
        let body = &unit.funs[0].body;
        // decl, desugared-for block, while, return
        assert_eq!(body.len(), 4);
        match &body[1] {
            Stmt::Block(stmts) => {
                assert!(matches!(stmts[0], Stmt::Decl { .. }));
                assert!(matches!(stmts[1], Stmt::While { .. }));
            }
            other => panic!("for should desugar to a block, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let unit = parse_src("int main() { return 1 + 2 * 3 < 4 && true; }");
        let ret = &unit.funs[0].body[0];
        let Stmt::Return { value: Some(e), .. } = ret else {
            panic!("expected return");
        };
        // Top level must be &&.
        assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            int main() {
                int x = 0;
                if (x == 0) { x = 1; } else if (x == 1) { x = 2; } else { x = 3; }
                return x;
            }
        "#;
        let unit = parse_src(src);
        let Stmt::If { else_branch, .. } = &unit.funs[0].body[1] else {
            panic!("expected if");
        };
        assert!(matches!(else_branch[0], Stmt::If { .. }));
    }

    #[test]
    fn error_messages_are_positioned() {
        let err = parse(&lex("int main() { return 1 + ; }").unwrap()).unwrap_err();
        assert!(err.pos.is_some());
        assert!(err.message.contains("unexpected"));
        let err = parse(&lex("int main() { int x = 1 }").unwrap()).unwrap_err();
        assert!(err.message.contains("expected `;`"));
    }

    #[test]
    fn empty_source_rejected() {
        assert!(parse(&lex("   // nothing\n").unwrap()).is_err());
    }
}
