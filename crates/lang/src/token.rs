//! MojaveC tokens.

use crate::error::SourcePos;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and identifiers
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (contents, unescaped).
    Str(String),
    /// Character literal.
    Char(char),
    /// Identifier.
    Ident(String),

    // Keywords
    /// `int`
    KwInt,
    /// `float`
    KwFloat,
    /// `bool`
    KwBool,
    /// `char`
    KwChar,
    /// `string`
    KwString,
    /// `void`
    KwVoid,
    /// `buffer`
    KwBuffer,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,

    // Punctuation and operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Char(c) => write!(f, "{c:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::KwInt => write!(f, "int"),
            Tok::KwFloat => write!(f, "float"),
            Tok::KwBool => write!(f, "bool"),
            Tok::KwChar => write!(f, "char"),
            Tok::KwString => write!(f, "string"),
            Tok::KwVoid => write!(f, "void"),
            Tok::KwBuffer => write!(f, "buffer"),
            Tok::KwIf => write!(f, "if"),
            Tok::KwElse => write!(f, "else"),
            Tok::KwWhile => write!(f, "while"),
            Tok::KwFor => write!(f, "for"),
            Tok::KwReturn => write!(f, "return"),
            Tok::KwTrue => write!(f, "true"),
            Tok::KwFalse => write!(f, "false"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Assign => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Bang => write!(f, "!"),
            Tok::Amp => write!(f, "&"),
            Tok::Pipe => write!(f, "|"),
            Tok::Caret => write!(f, "^"),
            Tok::Tilde => write!(f, "~"),
            Tok::Shl => write!(f, "<<"),
            Tok::Shr => write!(f, ">>"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Where it starts in the source.
    pub pos: SourcePos,
}

/// Map an identifier to a keyword token, if it is one.
pub fn keyword(ident: &str) -> Option<Tok> {
    Some(match ident {
        "int" => Tok::KwInt,
        "float" => Tok::KwFloat,
        "bool" => Tok::KwBool,
        "char" => Tok::KwChar,
        "string" => Tok::KwString,
        "void" => Tok::KwVoid,
        "buffer" => Tok::KwBuffer,
        "if" => Tok::KwIf,
        "else" => Tok::KwElse,
        "while" => Tok::KwWhile,
        "for" => Tok::KwFor,
        "return" => Tok::KwReturn,
        "true" => Tok::KwTrue,
        "false" => Tok::KwFalse,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(keyword("while"), Some(Tok::KwWhile));
        assert_eq!(keyword("buffer"), Some(Tok::KwBuffer));
        assert_eq!(keyword("speculate"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Tok::Shl.to_string(), "<<");
        assert_eq!(Tok::Ident("x".into()).to_string(), "x");
        assert_eq!(Tok::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
    }
}
