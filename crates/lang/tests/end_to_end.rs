//! End-to-end tests: compile MojaveC source with the front end and run it on
//! the Mojave runtime, covering the paper's Figure-1 Transfer example and the
//! speculation/migration primitives at the source level.

use mojave_core::{BackendKind, CheckpointStore, InMemorySink, Process, ProcessConfig, RunOutcome};
use mojave_lang::compile_source;

fn run(source: &str) -> (RunOutcome, Process) {
    run_with(source, BackendKind::Bytecode)
}

fn run_with(source: &str, backend: BackendKind) -> (RunOutcome, Process) {
    let program = compile_source(source).expect("source compiles");
    let config = ProcessConfig {
        backend,
        step_budget: Some(50_000_000),
        ..ProcessConfig::default()
    };
    let mut process = Process::new(program, config).expect("program verifies");
    let outcome = process.run().expect("program runs");
    (outcome, process)
}

fn exit_code(source: &str) -> i64 {
    let (outcome, _) = run(source);
    match outcome {
        RunOutcome::Exit(v) => v,
        other => panic!("expected exit, got {other:?}"),
    }
}

#[test]
fn arithmetic_and_locals() {
    assert_eq!(
        exit_code("int main() { int x = 6; int y = 7; return x * y; }"),
        42
    );
    assert_eq!(
        exit_code("int main() { int x = 10; x = x - 3; x = x * x; return x % 10; }"),
        9
    );
}

#[test]
fn control_flow_if_while_for() {
    assert_eq!(
        exit_code(
            r#"
            int main() {
                int acc = 0;
                for (int i = 0; i < 10; i = i + 1) {
                    if (i % 2 == 0) { acc = acc + i; } else { acc = acc + 1; }
                }
                return acc;
            }
            "#
        ),
        // even i: 0+2+4+6+8 = 20, odd i: 5 times +1 = 5
        25
    );
    assert_eq!(
        exit_code(
            r#"
            int main() {
                int n = 1;
                while (n < 100) { n = n * 2; }
                return n;
            }
            "#
        ),
        128
    );
}

#[test]
fn both_backends_agree_on_a_nontrivial_program() {
    let source = r#"
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(15); }
    "#;
    let (a, _) = run_with(source, BackendKind::Bytecode);
    let (b, _) = run_with(source, BackendKind::Interp);
    assert_eq!(a, RunOutcome::Exit(610));
    assert_eq!(a, b);
}

#[test]
fn user_functions_arrays_and_externs() {
    let source = r#"
        int sum(int[] values, int n) {
            int total = 0;
            for (int i = 0; i < n; i = i + 1) {
                total = total + values[i];
            }
            return total;
        }
        int main() {
            int[] values = alloc_int(8);
            for (int i = 0; i < 8; i = i + 1) {
                values[i] = i * i;
            }
            print_int(length(values));
            return sum(values, 8);
        }
    "#;
    let (outcome, process) = run(source);
    assert_eq!(outcome, RunOutcome::Exit(140));
    assert_eq!(process.output(), &["8".to_owned()]);
}

#[test]
fn floats_strings_and_buffers() {
    let source = r#"
        int main() {
            float[] field = alloc_float(4);
            field[0] = 1.5;
            field[1] = 2.5;
            float total = field[0] + field[1];
            print_float(total);
            print_str(str_concat("mo", "jave"));
            buffer b = alloc_buffer(4);
            poke(b, 0, 65);
            return peek(b, 0);
        }
    "#;
    let (outcome, process) = run(source);
    assert_eq!(outcome, RunOutcome::Exit(65));
    assert_eq!(process.output(), &["4".to_owned(), "mojave".to_owned()]);
}

/// The paper's Figure 1: the speculative Transfer.  With no injected
/// failures the transfer commits and swaps the two objects.
#[test]
fn figure1_transfer_commits_without_failures() {
    let source = r#"
        int transfer(int obj1, int obj2, int k) {
            buffer buf1 = alloc_buffer(k);
            buffer buf2 = alloc_buffer(k);
            int specid = speculate();
            if (specid > 0) {
                if (obj_read(obj1, buf1, k) != k) { abort(specid); }
                if (obj_read(obj2, buf2, k) != k) { abort(specid); }
                if (obj_write(obj1, buf2, k) != k) { abort(specid); }
                if (obj_write(obj2, buf1, k) != k) { abort(specid); }
                commit(specid);
                return 1;
            }
            return 0;
        }
        int main() {
            int a = obj_create(8);
            int b = obj_create(8);
            buffer init = alloc_buffer(8);
            poke(init, 0, 11);
            obj_write(a, init, 8);
            poke(init, 0, 22);
            obj_write(b, init, 8);

            int ok = transfer(a, b, 8);

            buffer check = alloc_buffer(8);
            obj_read(a, check, 8);
            int a_now = peek(check, 0);
            obj_read(b, check, 8);
            int b_now = peek(check, 0);
            // success flag, and the swapped contents encoded in the exit code
            return ok * 10000 + a_now * 100 + b_now;
        }
    "#;
    // ok=1, a now holds 22, b now holds 11.
    assert_eq!(exit_code(source), 10000 + 22 * 100 + 11);
}

/// Figure 1 with injected failures: the speculative version aborts and the
/// objects keep their original contents — the atomicity the traditional
/// version cannot provide when its compensating write also fails.
#[test]
fn figure1_transfer_aborts_atomically_under_failures() {
    let source = r#"
        int transfer(int obj1, int obj2, int k) {
            buffer buf1 = alloc_buffer(k);
            buffer buf2 = alloc_buffer(k);
            int specid = speculate();
            if (specid > 0) {
                if (obj_read(obj1, buf1, k) != k) { abort(specid); }
                if (obj_read(obj2, buf2, k) != k) { abort(specid); }
                if (obj_write(obj1, buf2, k) != k) { abort(specid); }
                if (obj_write(obj2, buf1, k) != k) { abort(specid); }
                commit(specid);
                return 1;
            }
            return 0;
        }
        int main() {
            int a = obj_create(8);
            int b = obj_create(8);
            buffer init = alloc_buffer(8);
            poke(init, 0, 11);
            obj_write(a, init, 8);
            poke(init, 0, 22);
            obj_write(b, init, 8);

            // Every subsequent object operation fails (reads return 0,
            // writes are partial).
            obj_set_fail_rate(100);
            int ok = transfer(a, b, 8);
            obj_set_fail_rate(0);

            buffer check = alloc_buffer(8);
            obj_read(a, check, 8);
            int a_now = peek(check, 0);
            obj_read(b, check, 8);
            int b_now = peek(check, 0);
            return ok * 10000 + a_now * 100 + b_now;
        }
    "#;
    // ok=0 and both objects still hold their original values: the aborted
    // speculation rolled back every partial effect.
    assert_eq!(exit_code(source), 11 * 100 + 22);
}

#[test]
fn speculation_rollback_restores_locals_too() {
    // Local variables live in the heap frame, so rollback restores them.
    let source = r#"
        int main() {
            int x = 5;
            int specid = speculate();
            if (specid > 0) {
                x = 99;
                abort(specid);
            }
            return x;
        }
    "#;
    assert_eq!(exit_code(source), 5);
}

#[test]
fn retry_reenters_with_the_same_id() {
    let source = r#"
        int main() {
            int attempts = 0;
            int specid = speculate();
            attempts = attempts + 1;
            if (attempts < 3) {
                retry(specid);
            }
            commit(specid);
            return specid * 100 + attempts;
        }
    "#;
    // NOTE: attempts is rolled back along with everything else, so the retry
    // loop would never terminate if rollback restored it — the program works
    // because `attempts` is incremented after speculation entry and the
    // rollback restores it to the value it had *at entry*... which is 0 every
    // time.  To keep the program terminating we bound it differently below.
    // This test therefore asserts the *non-terminating* variant is caught by
    // the step budget, documenting the semantics.
    let program = compile_source(source).unwrap();
    let config = ProcessConfig {
        step_budget: Some(100_000),
        ..ProcessConfig::default()
    };
    let mut p = Process::new(program, config).unwrap();
    assert!(matches!(
        p.run(),
        Err(mojave_core::RuntimeError::StepBudgetExhausted { .. })
    ));
}

#[test]
fn checkpoint_writes_an_image_and_execution_continues() {
    let source = r#"
        int main() {
            int total = 0;
            for (int step = 1; step <= 10; step = step + 1) {
                total = total + step;
                if (step == 5) {
                    checkpoint("grid-step-5");
                }
            }
            return total;
        }
    "#;
    let program = compile_source(source).unwrap();
    let store = CheckpointStore::new();
    let sink = InMemorySink::with_store(store.clone());
    let mut p = Process::new(program, ProcessConfig::default())
        .unwrap()
        .with_sink(Box::new(sink));
    assert_eq!(p.run().unwrap(), RunOutcome::Exit(55));
    assert_eq!(p.stats().checkpoints, 1);
    assert_eq!(store.names(), vec!["grid-step-5".to_owned()]);

    // The checkpoint is an executable image: resuming it re-runs the loop
    // from step 6 and produces the same final answer.
    let image = store.load("grid-step-5").unwrap();
    let mut resumed = Process::from_image(image, ProcessConfig::default()).unwrap();
    assert_eq!(resumed.run().unwrap(), RunOutcome::Exit(55));
}

#[test]
fn suspend_stops_the_process_and_resume_completes_it() {
    let source = r#"
        int main() {
            int x = 20;
            suspend("paused-here");
            return x + 1;
        }
    "#;
    let program = compile_source(source).unwrap();
    let store = CheckpointStore::new();
    let sink = InMemorySink::with_store(store.clone());
    let mut p = Process::new(program, ProcessConfig::default())
        .unwrap()
        .with_sink(Box::new(sink));
    assert_eq!(
        p.run().unwrap(),
        RunOutcome::Suspended {
            target: "paused-here".to_owned()
        }
    );
    let image = store.load("paused-here").unwrap();
    let mut resumed = Process::from_image(image, ProcessConfig::default()).unwrap();
    assert_eq!(resumed.run().unwrap(), RunOutcome::Exit(21));
}

#[test]
fn migrate_to_unreachable_node_continues_locally() {
    let source = r#"
        int main() {
            migrate("node-that-does-not-exist");
            return 3;
        }
    "#;
    let program = compile_source(source).unwrap();
    let mut p = Process::new(program, ProcessConfig::default()).unwrap();
    assert_eq!(p.run().unwrap(), RunOutcome::Exit(3));
    assert_eq!(p.stats().migration_failures, 1);
}

#[test]
fn nested_function_calls_in_expressions_are_hoisted() {
    let source = r#"
        int double_it(int x) { return x * 2; }
        int inc(int x) { return x + 1; }
        int main() {
            return double_it(inc(4)) + inc(double_it(3));
        }
    "#;
    assert_eq!(exit_code(source), 17);
}

#[test]
fn logical_operators_are_strict_but_correct() {
    assert_eq!(
        exit_code(
            r#"
            int main() {
                bool a = true;
                bool b = false;
                int n = 0;
                if (a && !b) { n = n + 1; }
                if (a || b) { n = n + 10; }
                if (b && a) { n = n + 100; }
                return n;
            }
            "#
        ),
        11
    );
}

#[test]
fn compile_errors_for_bad_programs() {
    // Unknown variable.
    assert!(compile_source("int main() { return y; }").is_err());
    // Unknown function.
    assert!(compile_source("int main() { return nope(); }").is_err());
    // Duplicate declaration in one scope.
    assert!(compile_source("int main() { int x = 1; int x = 2; return x; }").is_err());
    // `commit` inside an expression.
    assert!(compile_source("int main() { int x = commit(1) + 1; return x; }").is_err());
    // Wrong arity for an extern.
    assert!(compile_source("int main() { print_int(1, 2); return 0; }").is_err());
    // No main.
    assert!(compile_source("int helper() { return 1; }").is_err());
    // main with parameters.
    assert!(compile_source("int main(int argc) { return argc; }").is_err());
    // User call in a while condition.
    assert!(
        compile_source("int f() { return 0; } int main() { while (f() < 1) { } return 0; }")
            .is_err()
    );
}

#[test]
fn scoped_declarations_get_distinct_slots() {
    let source = r#"
        int main() {
            int total = 0;
            for (int i = 0; i < 3; i = i + 1) { total = total + i; }
            for (int i = 0; i < 4; i = i + 1) { total = total + 10; }
            if (total > 0) { int inner = 5; total = total + inner; }
            return total;
        }
    "#;
    assert_eq!(exit_code(source), 3 + 40 + 5);
}
