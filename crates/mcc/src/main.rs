//! `mcc` — the Mojave compiler driver.
//!
//! Subcommands:
//!
//! * `mcc compile <file.mj>` — compile MojaveC and print the FIR.
//! * `mcc run <file.mj> [--interp] [--steps N]` — compile and run a program.
//! * `mcc resume <checkpoint.img>` — execute a checkpoint image file
//!   (checkpoints are "formatted as executable files"; this is the
//!   executor).
//! * `mcc inspect <checkpoint.img>` — describe a checkpoint/migration image.
//! * `mcc node <addr> <node-id>` — join a `ClusterServer` over TCP as one
//!   node process: handshake, fetch the job, run the worker with remote
//!   externals + sink, report stats (the multi-process cluster harness).
//! * `mcc stats <addr>` — scrape every node's metrics from a running
//!   cluster server and print them.
//! * `mcc trace <addr> [out.json]` — scrape every node's flight-recorder
//!   events and export them as Chrome trace-event JSON
//!   (`chrome://tracing` / Perfetto).
//!
//! Programs run with the standard externals; checkpoints and suspends are
//! written as `<name>.img` files in the current directory so they can be
//! resumed later with `mcc resume`.

use mojave_cluster::{NodeStats, RemoteCluster, RemoteExternals, RemoteSink};
use mojave_core::{
    BackendKind, DeliveryOutcome, MigrationImage, MigrationSink, Process, ProcessConfig, RunOutcome,
};
use mojave_fir::MigrateProtocol;
use mojave_obs::{export_chrome_trace, validate_chrome_trace, Level, NodeObs, Recorder};
use mojave_runtime::{AsyncSink, PipelineConfig};
use std::path::Path;
use std::process::ExitCode;

/// A sink that writes checkpoint/suspend images to files in the working
/// directory, mirroring the paper's checkpoint-to-disk protocol.
struct FileSink;

impl MigrationSink for FileSink {
    fn deliver(
        &mut self,
        protocol: MigrateProtocol,
        target: &str,
        image: &MigrationImage,
    ) -> DeliveryOutcome {
        match protocol {
            MigrateProtocol::Checkpoint | MigrateProtocol::Suspend => {
                let path = format!("{}.img", target.replace(['/', ':'], "_"));
                match std::fs::write(&path, image.to_bytes()) {
                    Ok(()) => {
                        eprintln!("mcc: wrote {} ({} bytes)", path, image.byte_size());
                        DeliveryOutcome::Stored
                    }
                    Err(e) => DeliveryOutcome::Failed(e.to_string()),
                }
            }
            MigrateProtocol::Migrate => DeliveryOutcome::Failed(
                "mcc run is a single-machine driver; use the cluster API for migrate://".into(),
            ),
        }
    }

    /// Checkpoint files are read back by this same binary (`mcc resume` /
    /// `mcc inspect`), which decodes every slab codec — advertise them
    /// all so images land compressed on disk.
    fn accepted_codecs(&self) -> mojave_wire::CodecSet {
        mojave_wire::CodecSet::all()
    }
}

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  mcc compile <file.mj>");
    eprintln!("  mcc run <file.mj> [--interp] [--steps N]");
    eprintln!("  mcc resume <image.img> [--interp]");
    eprintln!("  mcc inspect <image.img>");
    eprintln!("  mcc node <addr> <node-id>");
    eprintln!("  mcc stats <addr>");
    eprintln!("  mcc trace <addr> [out.json]");
    ExitCode::from(2)
}

/// `mcc node <addr> <node-id>`: the node-process half of the socket
/// transport.  Dials the cluster server, fetches the job, runs the worker
/// with [`RemoteExternals`] and a [`RemoteSink`] (wrapped in the
/// asynchronous checkpoint pipeline when the job asks for it), and
/// reports final statistics before the orderly goodbye.
fn serve_node(addr: &str, node: u32) -> ExitCode {
    let codecs = mojave_wire::CodecSet::all();
    // Two connections on purpose: checkpoint deliveries (which may run on
    // a pipeline worker thread) must not queue behind a blocking
    // `msg_recv` RPC on the externals connection.
    let control = match RemoteCluster::connect(addr, node, codecs) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("mcc: node {node} cannot join cluster at {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report_failure = |message: String| {
        eprintln!("mcc: node {node}: {message}");
        let report = NodeStats {
            node,
            error: Some(message),
            ..NodeStats::default()
        };
        if control.report_stats(&report).is_err() {
            return ExitCode::FAILURE;
        }
        control.bye();
        ExitCode::SUCCESS
    };
    let welcome = control.welcome().clone();
    let (job, resume) = match control.fetch_job() {
        Ok(job) => job,
        Err(e) => return report_failure(format!("cannot fetch job: {e}")),
    };
    let config = ProcessConfig {
        machine: mojave_core::Machine::new(welcome.arch.clone()),
        step_budget: job.step_budget,
        delta_checkpoints: job.delta_checkpoints,
        heap_codec: job.heap_codec.and_then(mojave_wire::CodecId::from_u8),
        async_checkpoints: job.async_checkpoints,
        ..ProcessConfig::default()
    };
    // The job decides the observability level; a node process always
    // runs on the wall clock (its events are scraped, not replayed —
    // replay determinism is the in-process simulation's contract).
    let obs_level = Level::from_u8(job.obs_level);
    let recorder = Recorder::new(node, obs_level);
    control.set_recorder(recorder.clone());
    let sink_conn = match RemoteCluster::connect(addr, node, codecs) {
        Ok(conn) => conn,
        Err(e) => return report_failure(format!("cannot open sink connection: {e}")),
    };
    sink_conn.set_recorder(recorder.clone());
    let sink: Box<dyn MigrationSink> = {
        let inner = Box::new(RemoteSink::new(sink_conn.clone()));
        if job.async_checkpoints {
            // The deterministic drain barrier, exactly as the in-process
            // coordinator configures it: replay digests must not depend on
            // whether checkpoints ride the pipeline.
            let pipeline = AsyncSink::new(
                inner,
                PipelineConfig {
                    drain_after_submit: welcome.deterministic,
                    ..PipelineConfig::default()
                },
            );
            pipeline.set_recorder(recorder.clone());
            Box::new(pipeline)
        } else {
            inner
        }
    };
    // A resume image (the resurrection path) replaces compilation: the
    // checkpoint carries its own code.
    let built = match resume {
        Some(bytes) => MigrationImage::from_bytes(&bytes)
            .map_err(|e| format!("bad resume image: {e}"))
            .and_then(|image| {
                Process::from_image(image, config).map_err(|e| format!("resume failed: {e}"))
            }),
        None => mojave_lang::compile_source(&job.source)
            .map_err(|e| format!("job source failed to compile: {e}"))
            .and_then(|program| {
                Process::new(program, config).map_err(|e| format!("process setup failed: {e}"))
            }),
    };
    let mut process = match built {
        Ok(p) => p
            .with_externals(Box::new(RemoteExternals::new(control.clone())))
            .with_sink(sink)
            .with_recorder(recorder.clone()),
        Err(message) => return report_failure(message),
    };
    let outcome = process.run();
    process.export_metrics();
    let stats = process.stats();
    // Push the observability report before the stats frame: the
    // coordinator treats stats as the node's last word, so by then the
    // hub must already hold this node's scrape-able report.
    if obs_level > Level::Off {
        if let Err(e) = control.push_obs(&recorder.snapshot()) {
            eprintln!("mcc: node {node} could not push obs report: {e}");
        }
    }
    let link = control.link_stats();
    let mut report = NodeStats {
        node,
        rollbacks: stats.rollbacks,
        checkpoints: stats.checkpoints,
        delta_checkpoints: stats.delta_checkpoints,
        speculations: stats.speculations,
        checkpoint_pause_ns: stats.checkpoint_pause_ns,
        checkpoint_encode_ns: stats.checkpoint_encode_ns,
        frames_sent: link.frames_sent(),
        frames_received: link.frames_received(),
        bytes_sent: link.bytes_sent(),
        bytes_received: link.bytes_received(),
        ..NodeStats::default()
    };
    match outcome {
        Ok(RunOutcome::Exit(code)) => report.exit_code = Some(code),
        Ok(other) => report.error = Some(format!("unexpected outcome: {other:?}")),
        Err(e) => report.error = Some(e.to_string()),
    }
    // `Process::run` flushed the sink, so every accepted checkpoint is
    // already delivered; the stats report is the last word.
    drop(process);
    if let Err(e) = control.report_stats(&report) {
        eprintln!("mcc: node {node} could not report stats: {e}");
        return ExitCode::FAILURE;
    }
    sink_conn.bye();
    control.bye();
    ExitCode::SUCCESS
}

/// Scrape every node's observability report from a running cluster
/// server.  Connects as an *observer* on node 0's slot (the hub allows
/// any number of connections per node), queries, and says goodbye.
fn scrape_obs(addr: &str) -> Result<Vec<NodeObs>, String> {
    let remote = RemoteCluster::connect(addr, 0, mojave_wire::CodecSet::all())
        .map_err(|e| format!("cannot reach cluster at {addr}: {e}"))?;
    let reports = remote
        .query_obs()
        .map_err(|e| format!("scrape failed: {e}"));
    remote.bye();
    reports
}

/// `mcc stats <addr>`: print every node's scraped metrics.
fn print_stats(addr: &str) -> ExitCode {
    let reports = match scrape_obs(addr) {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("mcc: {e}");
            return ExitCode::FAILURE;
        }
    };
    if reports.is_empty() {
        println!("no observability reports on the hub (jobs run with obs_level 0?)");
        return ExitCode::SUCCESS;
    }
    for report in &reports {
        println!(
            "node {}: {} events recorded ({} dropped)",
            report.node,
            report.events.len(),
            report.dropped
        );
        for line in report.metrics.to_text().lines() {
            println!("  {line}");
        }
    }
    ExitCode::SUCCESS
}

/// `mcc trace <addr> [out.json]`: export every node's scraped events as
/// Chrome trace-event JSON (validated before it is written).
fn dump_trace(addr: &str, out: Option<&str>) -> ExitCode {
    let reports = match scrape_obs(addr) {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("mcc: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Concatenate per node (reports arrive sorted by node id), which
    // keeps each node's span begin/end pairs in recording order — the
    // property the validator checks.
    let events: Vec<mojave_obs::Event> = reports.iter().flat_map(|r| r.events.clone()).collect();
    let trace = export_chrome_trace(&events);
    let summary = match validate_chrome_trace(&trace) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("mcc: exported trace failed validation: {e}");
            return ExitCode::FAILURE;
        }
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &trace) {
                eprintln!("mcc: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "mcc: wrote {path}: {} events from {} nodes ({} spans)",
                summary.events,
                reports.len(),
                summary.begins
            );
        }
        None => println!("{trace}"),
    }
    ExitCode::SUCCESS
}

fn read_source(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn compile(path: &str) -> Result<mojave_fir::Program, String> {
    let source = read_source(path)?;
    mojave_lang::compile_source(&source).map_err(|e| format!("{path}: {e}"))
}

fn parse_config(args: &[String]) -> ProcessConfig {
    let mut config = ProcessConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--interp" => config.backend = BackendKind::Interp,
            "--steps" => {
                config.step_budget = iter.next().and_then(|s| s.parse().ok());
            }
            _ => {}
        }
    }
    config
}

fn run_process(mut process: Process) -> ExitCode {
    match process.run() {
        Ok(RunOutcome::Exit(code)) => {
            for line in process.output() {
                println!("{line}");
            }
            eprintln!(
                "mcc: exited with {code} after {} steps ({} speculations, {} rollbacks, {} checkpoints)",
                process.stats().steps,
                process.stats().speculations,
                process.stats().rollbacks,
                process.stats().checkpoints,
            );
            ExitCode::from((code & 0xFF) as u8)
        }
        Ok(RunOutcome::Suspended { target }) => {
            eprintln!("mcc: process suspended to `{target}`");
            ExitCode::SUCCESS
        }
        Ok(RunOutcome::MigratedAway { target }) => {
            eprintln!("mcc: process migrated to `{target}`");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mcc: runtime error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "compile" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match compile(path) {
                Ok(program) => {
                    print!("{}", mojave_fir::display::program_to_string(&program));
                    eprintln!(
                        "mcc: {} functions, {} expression nodes",
                        program.funs.len(),
                        program.size()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("mcc: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "run" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let config = parse_config(&args[2..]);
            match compile(path)
                .and_then(|program| Process::new(program, config).map_err(|e| e.to_string()))
            {
                Ok(process) => run_process(process.with_sink(Box::new(FileSink))),
                Err(e) => {
                    eprintln!("mcc: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "resume" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let config = parse_config(&args[2..]);
            let bytes = match std::fs::read(Path::new(path)) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("mcc: cannot read `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match MigrationImage::from_bytes(&bytes)
                .map_err(|e| e.to_string())
                .and_then(|image| Process::from_image(image, config).map_err(|e| e.to_string()))
            {
                Ok(process) => run_process(process.with_sink(Box::new(FileSink))),
                Err(e) => {
                    eprintln!("mcc: invalid image: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "inspect" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let bytes = match std::fs::read(Path::new(path)) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("mcc: cannot read `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match MigrationImage::from_bytes(&bytes) {
                Ok(image) => {
                    println!("source architecture : {}", image.source_arch);
                    println!("format version      : {}", image.format_version);
                    println!("image size          : {} bytes", bytes.len());
                    match image.heap_image.base() {
                        None => println!("heap section        : {} bytes", image.heap_image.len()),
                        Some(base) => println!(
                            "heap section        : {} bytes (delta against `{base}`)",
                            image.heap_image.len()
                        ),
                    }
                    println!("resume label        : L{}", image.label);
                    println!("open speculations   : {}", image.open_speculations);
                    match &image.code {
                        mojave_core::migrate::PackedCode::Fir(p) => {
                            println!(
                                "code                : FIR, {} functions, {} nodes",
                                p.funs.len(),
                                p.size()
                            );
                        }
                        mojave_core::migrate::PackedCode::Binary { arch, bytecode } => {
                            println!(
                                "code                : bytecode for {arch}, {} instructions",
                                bytecode.instruction_count()
                            );
                        }
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("mcc: invalid image: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "node" => {
            let (Some(addr), Some(node)) = (args.get(1), args.get(2).and_then(|s| s.parse().ok()))
            else {
                return usage();
            };
            serve_node(addr, node)
        }
        "stats" => {
            let Some(addr) = args.get(1) else {
                return usage();
            };
            print_stats(addr)
        }
        "trace" => {
            let Some(addr) = args.get(1) else {
                return usage();
            };
            dump_trace(addr, args.get(2).map(String::as_str))
        }
        _ => usage(),
    }
}
