//! The multi-process cluster harness, end to end: a [`ClusterServer`] on
//! loopback TCP, three real `mcc node` OS processes, and the in-process
//! deterministic simulation as the oracle.  The transport's correctness
//! claim is digest parity — every wire-v5 image genuinely crossed a
//! socket, and the run is still bit-identical to the single-process sim.

use mojave_cluster::{Cluster, ClusterConfig, ClusterServer, JobSpec};
use mojave_grid::{
    run_grid_deterministic, run_grid_served, run_grid_with, FailurePlan, GridConfig, GridOptions,
};
use mojave_obs::{validate_chrome_trace, Level};
use mojave_wire::CodecSet;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn spawn_node(addr: &str, node: usize) -> std::io::Result<Child> {
    Command::new(env!("CARGO_BIN_EXE_mcc"))
        .arg("node")
        .arg(addr)
        .arg(node.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
}

fn small_grid(workers: usize) -> GridConfig {
    GridConfig {
        workers,
        rows_per_worker: 3,
        cols: 6,
        timesteps: 6,
        checkpoint_interval: 2,
    }
}

#[test]
fn three_process_loopback_run_matches_in_process_digest() {
    let config = small_grid(3);
    let seed = 0x10C4_13AC;

    let cluster = Cluster::new(ClusterConfig::deterministic(config.workers, seed));
    let server = ClusterServer::bind(cluster, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    // Tracing is on for the served run but off for the in-process oracle:
    // digest parity below doubles as the proof that observability never
    // perturbs a run.
    let options = GridOptions {
        obs: Level::Trace,
        ..GridOptions::default()
    };
    let served = run_grid_served(&server, &config, None, options, |node| {
        spawn_node(&addr, node)
    })
    .expect("served run succeeds");
    assert!(served.is_correct(), "max error {}", served.max_error());

    // Every node pushed a scrape-able observability report over its
    // socket before reporting stats.
    assert_eq!(served.node_obs.len(), config.workers);
    for report in &served.node_obs {
        assert!(
            !report.metrics.is_empty(),
            "node {} scraped empty metrics",
            report.node
        );
        assert!(
            report.metrics.counter("process.checkpoints") > 0,
            "node {} metrics: {}",
            report.node,
            report.metrics.to_text()
        );
        assert!(
            !report.events.is_empty(),
            "node {} traced no events",
            report.node
        );
    }

    // All four codecs negotiated on every node's connection.
    let negotiated = server.negotiated_codecs();
    assert_eq!(negotiated.len(), config.workers);
    for (node, codecs) in &negotiated {
        assert_eq!(
            *codecs,
            CodecSet::all(),
            "node {node} should negotiate the full codec set"
        );
    }
    // And the negotiation produced genuinely compressed images over the
    // socket: the store kept fewer bytes than the raw frames.
    assert!(served.checkpoint_stored_bytes < served.checkpoint_raw_bytes);

    // The oracle: the same configuration and seed, one process, no
    // sockets.  The transport must be logically invisible.
    let in_process = run_grid_deterministic(&config, None, seed).expect("in-process run");
    assert_eq!(served.replay_digest(), in_process.replay_digest());
}

#[test]
fn loopback_failure_injection_resurrects_across_processes() {
    let config = small_grid(3);
    let seed = 0xFA11_0E45;
    let failure = Some(FailurePlan {
        victim: 1,
        after_checkpoints: 1,
    });

    let cluster = Cluster::new(ClusterConfig::deterministic(config.workers, seed));
    let server = ClusterServer::bind(cluster, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let served = run_grid_served(&server, &config, failure, GridOptions::default(), |node| {
        spawn_node(&addr, node)
    })
    .expect("served run recovers");
    assert!(served.is_correct(), "max error {}", served.max_error());
    assert!(served.recovered_from_failure);

    let in_process = run_grid_deterministic(&config, failure, seed).expect("in-process run");
    assert_eq!(served.replay_digest(), in_process.replay_digest());
}

#[test]
fn loopback_async_pipeline_reuses_backpressure_and_keeps_the_digest() {
    // The node processes route checkpoints through the asynchronous
    // pipeline (`AsyncSink` over `RemoteSink` — the per-peer send queue),
    // with the deterministic drain barrier.  The digest must match both
    // the in-process async run and, transitively, the synchronous one.
    let config = small_grid(3);
    let seed = 0xA57_0C4;
    let options = GridOptions {
        async_checkpoints: true,
        ..GridOptions::default()
    };

    let cluster = Cluster::new(ClusterConfig::deterministic(config.workers, seed));
    let server = ClusterServer::bind(cluster, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let served = run_grid_served(&server, &config, None, options, |node| {
        spawn_node(&addr, node)
    })
    .expect("served async run succeeds");
    assert!(served.is_correct(), "max error {}", served.max_error());

    let in_process = run_grid_with(
        &config,
        None,
        GridOptions {
            seed: Some(seed),
            async_checkpoints: true,
            ..GridOptions::default()
        },
    )
    .expect("in-process async run");
    assert_eq!(served.replay_digest(), in_process.replay_digest());
}

#[test]
fn loopback_traffic_counters_are_coherent_and_cli_scrapes_work() {
    // One node process running a tiny checkpointing job, so both ends'
    // frame/byte counters and the scrape CLI can be checked precisely.
    let cluster = Cluster::new(ClusterConfig::deterministic(1, 0x0B5_CAFE));
    let server = ClusterServer::bind(cluster, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    server.set_job(JobSpec {
        source: r#"
int main() {
    int i = 0;
    while (i < 3) {
        checkpoint(str_concat("grid-0-", int_to_str(i)));
        i = i + 1;
    }
    return 4200;
}
"#
        .into(),
        step_budget: Some(1_000_000),
        delta_checkpoints: true,
        heap_codec: None,
        async_checkpoints: false,
        obs_level: Level::Trace as u8,
    });
    let mut child = spawn_node(&addr, 0).expect("spawn node");
    let stats = server
        .next_stats(Duration::from_secs(60))
        .expect("node reports");
    let _ = child.wait();
    assert_eq!(stats.exit_code, Some(4200));

    // The node counted its own control-connection traffic...
    assert!(stats.frames_sent > 0, "stats: {stats:?}");
    assert!(stats.frames_received > 0);
    // ...every frame carries a 5-byte header, so bytes dominate frames...
    assert!(stats.bytes_sent >= stats.frames_sent * 5);
    assert!(stats.bytes_received >= stats.frames_received * 5);

    // ...and the hub's aggregate for the node (control + sink
    // connections, plus the stats frame itself, which arrived after the
    // node snapshotted its counters) is strictly larger on both axes.
    let hub = server.traffic(0).expect("hub tracked node 0");
    assert!(
        hub.frames_received() > stats.frames_sent,
        "hub received {} vs node sent {}",
        hub.frames_received(),
        stats.frames_sent
    );
    assert!(hub.frames_sent() > stats.frames_received);
    assert!(hub.bytes_received() > stats.bytes_sent);
    assert!(hub.bytes_sent() > stats.bytes_received);

    // `mcc stats` scrapes non-empty per-node metrics over a real socket.
    let out = Command::new(env!("CARGO_BIN_EXE_mcc"))
        .args(["stats", &addr])
        .output()
        .expect("mcc stats runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("node 0"), "mcc stats said: {text}");
    assert!(
        text.contains("process.checkpoints"),
        "mcc stats said: {text}"
    );

    // `mcc trace` exports Chrome trace JSON that the validator accepts
    // with balanced span begin/end pairs.
    let trace_path =
        std::env::temp_dir().join(format!("mojave-loopback-trace-{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_mcc"))
        .args(["trace", &addr])
        .arg(&trace_path)
        .output()
        .expect("mcc trace runs");
    assert!(
        out.status.success(),
        "mcc trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    let summary = validate_chrome_trace(&trace).expect("trace validates");
    assert!(summary.begins > 0, "checkpoint spans must appear");
    assert_eq!(summary.begins, summary.ends, "span pairs balance");
    let _ = std::fs::remove_file(&trace_path);
}
