//! The multi-process cluster harness, end to end: a [`ClusterServer`] on
//! loopback TCP, three real `mcc node` OS processes, and the in-process
//! deterministic simulation as the oracle.  The transport's correctness
//! claim is digest parity — every wire-v5 image genuinely crossed a
//! socket, and the run is still bit-identical to the single-process sim.

use mojave_cluster::{Cluster, ClusterConfig, ClusterServer};
use mojave_grid::{
    run_grid_deterministic, run_grid_served, run_grid_with, FailurePlan, GridConfig, GridOptions,
};
use mojave_wire::CodecSet;
use std::process::{Child, Command, Stdio};

fn spawn_node(addr: &str, node: usize) -> std::io::Result<Child> {
    Command::new(env!("CARGO_BIN_EXE_mcc"))
        .arg("node")
        .arg(addr)
        .arg(node.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
}

fn small_grid(workers: usize) -> GridConfig {
    GridConfig {
        workers,
        rows_per_worker: 3,
        cols: 6,
        timesteps: 6,
        checkpoint_interval: 2,
    }
}

#[test]
fn three_process_loopback_run_matches_in_process_digest() {
    let config = small_grid(3);
    let seed = 0x10C4_13AC;

    let cluster = Cluster::new(ClusterConfig::deterministic(config.workers, seed));
    let server = ClusterServer::bind(cluster, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let served = run_grid_served(&server, &config, None, GridOptions::default(), |node| {
        spawn_node(&addr, node)
    })
    .expect("served run succeeds");
    assert!(served.is_correct(), "max error {}", served.max_error());

    // All four codecs negotiated on every node's connection.
    let negotiated = server.negotiated_codecs();
    assert_eq!(negotiated.len(), config.workers);
    for (node, codecs) in &negotiated {
        assert_eq!(
            *codecs,
            CodecSet::all(),
            "node {node} should negotiate the full codec set"
        );
    }
    // And the negotiation produced genuinely compressed images over the
    // socket: the store kept fewer bytes than the raw frames.
    assert!(served.checkpoint_stored_bytes < served.checkpoint_raw_bytes);

    // The oracle: the same configuration and seed, one process, no
    // sockets.  The transport must be logically invisible.
    let in_process = run_grid_deterministic(&config, None, seed).expect("in-process run");
    assert_eq!(served.replay_digest(), in_process.replay_digest());
}

#[test]
fn loopback_failure_injection_resurrects_across_processes() {
    let config = small_grid(3);
    let seed = 0xFA11_0E45;
    let failure = Some(FailurePlan {
        victim: 1,
        after_checkpoints: 1,
    });

    let cluster = Cluster::new(ClusterConfig::deterministic(config.workers, seed));
    let server = ClusterServer::bind(cluster, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let served = run_grid_served(&server, &config, failure, GridOptions::default(), |node| {
        spawn_node(&addr, node)
    })
    .expect("served run recovers");
    assert!(served.is_correct(), "max error {}", served.max_error());
    assert!(served.recovered_from_failure);

    let in_process = run_grid_deterministic(&config, failure, seed).expect("in-process run");
    assert_eq!(served.replay_digest(), in_process.replay_digest());
}

#[test]
fn loopback_async_pipeline_reuses_backpressure_and_keeps_the_digest() {
    // The node processes route checkpoints through the asynchronous
    // pipeline (`AsyncSink` over `RemoteSink` — the per-peer send queue),
    // with the deterministic drain barrier.  The digest must match both
    // the in-process async run and, transitively, the synchronous one.
    let config = small_grid(3);
    let seed = 0xA57_0C4;
    let options = GridOptions {
        async_checkpoints: true,
        ..GridOptions::default()
    };

    let cluster = Cluster::new(ClusterConfig::deterministic(config.workers, seed));
    let server = ClusterServer::bind(cluster, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let served = run_grid_served(&server, &config, None, options, |node| {
        spawn_node(&addr, node)
    })
    .expect("served async run succeeds");
    assert!(served.is_correct(), "max error {}", served.max_error());

    let in_process = run_grid_with(
        &config,
        None,
        GridOptions {
            seed: Some(seed),
            async_checkpoints: true,
            ..GridOptions::default()
        },
    )
    .expect("in-process async run");
    assert_eq!(served.replay_digest(), in_process.replay_digest());
}
