//! Pluggable time sources for the flight recorder.

use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Where event timestamps come from.
///
/// The recorder never interprets the value beyond "microseconds on this
/// node's timeline"; what matters is the contract: in deterministic
/// cluster mode the source must be the node's **seeded virtual clock**
/// (a pure function of the seed and the node's own execution), so two
/// runs from the same seed stamp identical timestamps and the exported
/// trace replays bit-for-bit.  Reading the clock must never *advance*
/// it — observation cannot perturb the run.
pub trait ClockSource: Send + Sync + Debug {
    /// Current time in microseconds on this source's timeline.
    fn now_us(&self) -> u64;
}

/// Wall-clock time, microseconds since the clock was created.  The
/// default for real (non-deterministic) runs.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose zero is "now".
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl ClockSource for WallClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A manually advanced clock: reads return the last value stored.  Used
/// by tests and as the zero clock of a disabled recorder (a disabled
/// recorder must not pay `Instant::now()` at construction).
#[derive(Debug, Default)]
pub struct FixedClock {
    now_us: AtomicU64,
}

impl FixedClock {
    /// A clock pinned at `now_us` microseconds.
    pub fn at(now_us: u64) -> FixedClock {
        FixedClock {
            now_us: AtomicU64::new(now_us),
        }
    }

    /// Move the clock to `now_us` (monotonicity is the caller's duty).
    pub fn set(&self, now_us: u64) {
        self.now_us.store(now_us, Ordering::Relaxed);
    }
}

impl ClockSource for FixedClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_advances() {
        let clock = WallClock::new();
        let a = clock.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(clock.now_us() > a);
    }

    #[test]
    fn fixed_clock_reads_what_was_set() {
        let clock = FixedClock::at(41);
        assert_eq!(clock.now_us(), 41);
        clock.set(99);
        assert_eq!(clock.now_us(), 99);
    }
}
