//! The event taxonomy: every typed record the flight recorder holds.

/// What happened.  The two generic payload words `a`/`b` of an [`Event`]
/// mean different things per kind (documented on each variant); they
/// carry only **replay-deterministic** values — sizes, counts, levels,
/// outcome codes — never wall-clock durations, so deterministic-mode
/// event streams are a pure function of the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// A checkpoint began on the mutator (span open).  `a` = migrate
    /// label, `b` = 1 for the asynchronous (zero-pause) path, 0 for the
    /// synchronous one.
    CheckpointBegin = 1,
    /// The checkpoint's mutator-side work finished (span close).  `a` =
    /// migrate label, `b` = delivery outcome code (0 stored, 1 migrated,
    /// 2 superseded, 3 failed).
    CheckpointEnd = 2,
    /// A zero-pause heap freeze (`Heap::freeze`).  `a` = live blocks
    /// captured, `b` = payload bytes logically captured.
    Freeze = 3,
    /// An image encode completed (mutator thread or pipeline worker).
    /// `a` = raw heap-payload bytes, `b` = stored (post-codec) bytes.
    Encode = 4,
    /// A sink delivery resolved.  `a` = delivery outcome code, `b` =
    /// image bytes shipped.
    Deliver = 5,
    /// A speculation level opened.  `a` = level id.
    SpecEnter = 6,
    /// A speculation level committed.  `a` = level id.
    SpecCommit = 7,
    /// A speculation level rolled back.  `a` = level id.
    SpecAbort = 8,
    /// A minor (young-generation) collection ran.  `a` = blocks freed,
    /// `b` = live blocks after.
    GcMinor = 9,
    /// A major (mark-sweep-compact) collection ran.  `a` = blocks freed,
    /// `b` = live blocks after.
    GcMajor = 10,
    /// A cluster message was sent.  `a` = destination node, `b` =
    /// payload length (f64 words).
    Send = 11,
    /// A cluster message was received.  `a` = source node, `b` = payload
    /// length (f64 words); `b` = `u64::MAX` encodes a failed/rolled
    /// receive (`MSG_ROLL`).
    Recv = 12,
    /// This node was marked failed.  `a` = failure epoch; `b` = 0 when
    /// the failure was self-injected (`inject_failure`), 1 when the
    /// process first *observed* an externally injected failure.
    Failure = 13,
    /// This node was resurrected from a checkpoint.  `a` = checkpoint
    /// step resumed from.
    Resurrect = 14,
    /// A transport connection was re-established after a drop.  `a` =
    /// reconnect attempt number.
    Reconnect = 15,
    /// A slab codec was chosen for an image.  `a` = codec id (0xFF =
    /// mixed/auto), `b` = stored heap-payload bytes.
    CodecChosen = 16,
    /// A checkpoint-pipeline queue-depth sample.  `a` = depth after the
    /// submit, `b` = queue capacity.
    QueueDepth = 17,
}

impl EventKind {
    /// Stable name used by the JSON exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::CheckpointBegin => "CheckpointBegin",
            EventKind::CheckpointEnd => "CheckpointEnd",
            EventKind::Freeze => "Freeze",
            EventKind::Encode => "Encode",
            EventKind::Deliver => "Deliver",
            EventKind::SpecEnter => "SpecEnter",
            EventKind::SpecCommit => "SpecCommit",
            EventKind::SpecAbort => "SpecAbort",
            EventKind::GcMinor => "GcMinor",
            EventKind::GcMajor => "GcMajor",
            EventKind::Send => "Send",
            EventKind::Recv => "Recv",
            EventKind::Failure => "Failure",
            EventKind::Resurrect => "Resurrect",
            EventKind::Reconnect => "Reconnect",
            EventKind::CodecChosen => "CodecChosen",
            EventKind::QueueDepth => "QueueDepth",
        }
    }

    /// Decode the wire byte.
    pub fn from_u8(byte: u8) -> Option<EventKind> {
        use EventKind::*;
        const ALL: [EventKind; 17] = [
            CheckpointBegin,
            CheckpointEnd,
            Freeze,
            Encode,
            Deliver,
            SpecEnter,
            SpecCommit,
            SpecAbort,
            GcMinor,
            GcMajor,
            Send,
            Recv,
            Failure,
            Resurrect,
            Reconnect,
            CodecChosen,
            QueueDepth,
        ];
        ALL.into_iter().find(|k| *k as u8 == byte)
    }

    /// Whether this kind opens a span ([`EventKind::CheckpointBegin`]).
    pub fn is_span_begin(self) -> bool {
        self == EventKind::CheckpointBegin
    }

    /// Whether this kind closes a span ([`EventKind::CheckpointEnd`]).
    pub fn is_span_end(self) -> bool {
        self == EventKind::CheckpointEnd
    }
}

/// One flight-recorder entry: when, where, what, and two payload words
/// whose meaning is per-[`EventKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Microseconds on the recorder's [`crate::ClockSource`] timeline.
    pub ts_us: u64,
    /// The node (or process slot) that recorded the event.
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (see [`EventKind`]).
    pub a: u64,
    /// Second payload word (see [`EventKind`]).
    pub b: u64,
}

impl Event {
    /// Append the canonical 29-byte little-endian encoding (the trace
    /// scrape frame element; layout documented in `docs/WIRE_FORMAT.md`).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ts_us.to_le_bytes());
        out.extend_from_slice(&self.node.to_le_bytes());
        out.push(self.kind as u8);
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
    }

    /// Size of one encoded event.
    pub const ENCODED_LEN: usize = 8 + 4 + 1 + 8 + 8;

    /// Decode one event from `bytes` (exactly [`Event::ENCODED_LEN`]).
    pub fn decode(bytes: &[u8]) -> Result<Event, String> {
        if bytes.len() < Self::ENCODED_LEN {
            return Err(format!(
                "event record truncated: {} of {} bytes",
                bytes.len(),
                Self::ENCODED_LEN
            ));
        }
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
        let kind = EventKind::from_u8(bytes[12])
            .ok_or_else(|| format!("unknown event kind {:#04x}", bytes[12]))?;
        Ok(Event {
            ts_us: u64_at(0),
            node: u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
            kind,
            a: u64_at(13),
            b: u64_at(21),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip_their_wire_byte() {
        for byte in 0u8..=255 {
            if let Some(kind) = EventKind::from_u8(byte) {
                assert_eq!(kind as u8, byte);
            }
        }
        assert_eq!(EventKind::from_u8(0), None);
        assert_eq!(EventKind::from_u8(18), None);
    }

    #[test]
    fn event_encoding_roundtrips() {
        let event = Event {
            ts_us: 123_456,
            node: 7,
            kind: EventKind::Deliver,
            a: u64::MAX,
            b: 42,
        };
        let mut bytes = Vec::new();
        event.encode(&mut bytes);
        assert_eq!(bytes.len(), Event::ENCODED_LEN);
        assert_eq!(Event::decode(&bytes).unwrap(), event);
        assert!(Event::decode(&bytes[..10]).is_err());
    }
}
