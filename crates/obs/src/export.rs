//! Exporters: human text, JSON-lines, and Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`), plus a dependency-free
//! validator for the Chrome format.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::event::{Event, EventKind};

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Human-readable export: one aligned line per event.
pub fn export_text(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        let _ = writeln!(
            out,
            "[{:>12} us] node {:>3}  {:<16} a={} b={}",
            event.ts_us,
            event.node,
            event.kind.name(),
            event.a,
            event.b
        );
    }
    out
}

/// JSON-lines export: one object per event, stable key order.
pub fn export_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        let _ = writeln!(
            out,
            "{{\"ts_us\":{},\"node\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            event.ts_us,
            event.node,
            event.kind.name(),
            event.a,
            event.b
        );
    }
    out
}

/// Chrome trace-event JSON export.
///
/// Mapping: [`EventKind::CheckpointBegin`] / [`EventKind::CheckpointEnd`]
/// become duration-span `"B"`/`"E"` pairs named `checkpoint`;
/// [`EventKind::QueueDepth`] becomes a `"C"` counter track; everything
/// else is an `"i"` instant.  `pid` is the node, `tid` is 0 — one
/// timeline row per node.
pub fn export_chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for event in events {
        if !first {
            out.push(',');
        }
        first = false;
        match event.kind {
            EventKind::CheckpointBegin => {
                let _ = write!(
                    out,
                    "{{\"name\":\"checkpoint\",\"ph\":\"B\",\"ts\":{},\"pid\":{},\"tid\":0,\
                     \"args\":{{\"label\":{},\"async\":{}}}}}",
                    event.ts_us, event.node, event.a, event.b
                );
            }
            EventKind::CheckpointEnd => {
                let _ = write!(
                    out,
                    "{{\"name\":\"checkpoint\",\"ph\":\"E\",\"ts\":{},\"pid\":{},\"tid\":0,\
                     \"args\":{{\"label\":{},\"outcome\":{}}}}}",
                    event.ts_us, event.node, event.a, event.b
                );
            }
            EventKind::QueueDepth => {
                let _ = write!(
                    out,
                    "{{\"name\":\"queue_depth\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":0,\
                     \"args\":{{\"depth\":{},\"capacity\":{}}}}}",
                    event.ts_us, event.node, event.a, event.b
                );
            }
            kind => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":0,\
                     \"args\":{{\"a\":{},\"b\":{}}}}}",
                    kind.name(),
                    event.ts_us,
                    event.node,
                    event.a,
                    event.b
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// What [`validate_chrome_trace`] found in a trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChromeTraceSummary {
    /// Total trace events in the document.
    pub events: usize,
    /// `"B"` span-begin events.
    pub begins: usize,
    /// `"E"` span-end events.
    pub ends: usize,
    /// `"i"` instant events.
    pub instants: usize,
    /// `"C"` counter events.
    pub counters: usize,
}

/// Parse and validate a Chrome trace-event document produced by
/// [`export_chrome_trace`] (or any conforming JSON-object format trace).
///
/// Checks that the document is well-formed JSON, that `traceEvents` is
/// an array of objects each carrying a string `ph`, and that `"B"`/`"E"`
/// pairs balance per `(pid, tid)` track (never more ends than begins,
/// none left open at the end).  Dependency-free: the JSON parser below
/// handles exactly the subset the exporter emits plus general nesting.
pub fn validate_chrome_trace(trace: &str) -> Result<ChromeTraceSummary, String> {
    let value = JsonParser::new(trace).parse_document()?;
    let root = match value {
        Json::Object(fields) => fields,
        _ => return Err("trace root is not a JSON object".to_owned()),
    };
    let events = match root.iter().find(|(k, _)| k == "traceEvents") {
        Some((_, Json::Array(events))) => events,
        Some(_) => return Err("traceEvents is not an array".to_owned()),
        None => return Err("missing traceEvents key".to_owned()),
    };
    let mut summary = ChromeTraceSummary::default();
    let mut open: HashMap<(i64, i64), i64> = HashMap::new();
    for (index, event) in events.iter().enumerate() {
        let fields = match event {
            Json::Object(fields) => fields,
            _ => return Err(format!("traceEvents[{index}] is not an object")),
        };
        let ph = match fields.iter().find(|(k, _)| k == "ph") {
            Some((_, Json::String(ph))) => ph.as_str(),
            _ => return Err(format!("traceEvents[{index}] has no string \"ph\"")),
        };
        let int_field = |name: &str| -> i64 {
            match fields.iter().find(|(k, _)| k == name) {
                Some((_, Json::Number(n))) => *n as i64,
                _ => 0,
            }
        };
        summary.events += 1;
        match ph {
            "B" => {
                summary.begins += 1;
                *open
                    .entry((int_field("pid"), int_field("tid")))
                    .or_insert(0) += 1;
            }
            "E" => {
                summary.ends += 1;
                let track = (int_field("pid"), int_field("tid"));
                let depth = open.entry(track).or_insert(0);
                *depth -= 1;
                if *depth < 0 {
                    return Err(format!(
                        "unbalanced span: \"E\" without matching \"B\" on track {track:?} \
                         at traceEvents[{index}]"
                    ));
                }
            }
            "i" | "I" => summary.instants += 1,
            "C" => summary.counters += 1,
            _ => {}
        }
    }
    if let Some((track, depth)) = open.iter().find(|(_, depth)| **depth != 0) {
        return Err(format!(
            "unbalanced span: {depth} \"B\" event(s) left open on track {track:?}"
        ));
    }
    Ok(summary)
}

/// A parsed JSON value (just enough structure for validation).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Json, String> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at offset {}", self.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of JSON".to_owned())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek()? != byte {
            return Err(format!(
                "expected '{}' at offset {}, found '{}'",
                byte as char, self.pos, self.bytes[self.pos] as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Json::String(self.parse_string()?)),
            b't' => self.parse_literal("true", Json::Bool(true)),
            b'f' => self.parse_literal("false", Json::Bool(false)),
            b'n' => self.parse_literal("null", Json::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number '{text}' at offset {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_owned())?;
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_owned());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "non-ascii \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                byte if byte < 0x80 => out.push(byte as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the slice.
                    let start = self.pos - 1;
                    let len = match byte {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    if start + len > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".to_owned());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at offset {}, found '{}'",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at offset {}, found '{}'",
                        self.pos, other as char
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                ts_us: 10,
                node: 0,
                kind: EventKind::CheckpointBegin,
                a: 1,
                b: 0,
            },
            Event {
                ts_us: 12,
                node: 0,
                kind: EventKind::Freeze,
                a: 64,
                b: 4096,
            },
            Event {
                ts_us: 15,
                node: 0,
                kind: EventKind::QueueDepth,
                a: 1,
                b: 4,
            },
            Event {
                ts_us: 20,
                node: 0,
                kind: EventKind::CheckpointEnd,
                a: 1,
                b: 0,
            },
            Event {
                ts_us: 21,
                node: 1,
                kind: EventKind::Send,
                a: 0,
                b: 3,
            },
        ]
    }

    #[test]
    fn text_and_jsonl_have_one_line_per_event() {
        let events = sample_events();
        assert_eq!(export_text(&events).lines().count(), events.len());
        let jsonl = export_jsonl(&events);
        assert_eq!(jsonl.lines().count(), events.len());
        assert!(jsonl.contains("\"kind\":\"Freeze\""));
    }

    #[test]
    fn chrome_trace_validates_with_balanced_spans() {
        let trace = export_chrome_trace(&sample_events());
        let summary = validate_chrome_trace(&trace).unwrap();
        assert_eq!(summary.events, 5);
        assert_eq!(summary.begins, 1);
        assert_eq!(summary.ends, 1);
        assert_eq!(summary.counters, 1);
        assert_eq!(summary.instants, 2);
    }

    #[test]
    fn validator_rejects_unbalanced_spans() {
        let only_end = vec![Event {
            ts_us: 1,
            node: 0,
            kind: EventKind::CheckpointEnd,
            a: 0,
            b: 0,
        }];
        let err = validate_chrome_trace(&export_chrome_trace(&only_end)).unwrap_err();
        assert!(err.contains("unbalanced"), "{err}");

        let only_begin = vec![Event {
            ts_us: 1,
            node: 0,
            kind: EventKind::CheckpointBegin,
            a: 0,
            b: 0,
        }];
        let err = validate_chrome_trace(&export_chrome_trace(&only_begin)).unwrap_err();
        assert!(err.contains("left open"), "{err}");
    }

    #[test]
    fn validator_rejects_malformed_json() {
        assert!(validate_chrome_trace("{\"traceEvents\":[").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":{}}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"no_ph\":1}]}").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = r#"{"traceEvents":[{"ph":"i","name":"a\"bA\n","nested":{"x":[1,2,{"y":null}],"ok":true}}]}"#;
        let summary = validate_chrome_trace(doc).unwrap();
        assert_eq!(summary.instants, 1);
    }
}
