//! # mojave-obs
//!
//! The observability layer: a **flight recorder** (fixed-capacity ring
//! buffer of typed runtime events), a **metrics registry** (counters and
//! power-of-two-bucket histograms) and **exporters** (human text,
//! JSON-lines, Chrome trace-event JSON).
//!
//! The crate is deliberately dependency-free and knows nothing about
//! heaps, processes or clusters — the runtime layers push events and
//! samples *into* it.  Three design rules shape everything here:
//!
//! 1. **The disabled path is one branch.**  A [`Recorder`] is always
//!    present (every `Heap` and `Process` carries one), so recording has
//!    to be free when tracing is off: [`Recorder::record`] loads one
//!    atomic and returns.  No allocation, no clock read, no lock.
//!
//! 2. **Deterministic traces.**  Timestamps come from a pluggable
//!    [`ClockSource`].  Real runs use [`WallClock`]; deterministic
//!    cluster runs plug in the node's seeded virtual clock, so the whole
//!    event stream — timestamps included — is a pure function of the
//!    seed and two runs export byte-identical traces.  Event payload
//!    arguments carry only replay-deterministic values (sizes, counts,
//!    levels, outcome codes), never wall-clock durations.
//!
//! 3. **One export surface.**  The scattered per-layer stats structs
//!    (`HeapStats`, `ProcessStats`, `PipelineStats`, `NodeStats`) all
//!    fold into a [`MetricsRegistry`]; snapshots merge across nodes and
//!    export uniformly ([`MetricsSnapshot::to_text`], JSON-lines,
//!    [`export_chrome_trace`] for spans).
//!
//! ```
//! use mojave_obs::{EventKind, Level, Recorder, export_chrome_trace, validate_chrome_trace};
//!
//! let recorder = Recorder::new(0, Level::Trace);
//! recorder.record(EventKind::CheckpointBegin, 1, 0);
//! recorder.record(EventKind::Freeze, 64, 4096);
//! recorder.record(EventKind::CheckpointEnd, 1, 0);
//! let trace = export_chrome_trace(&recorder.events());
//! let summary = validate_chrome_trace(&trace).unwrap();
//! assert_eq!(summary.begins, summary.ends);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod event;
mod export;
mod metrics;
mod recorder;
mod report;

pub use clock::{ClockSource, FixedClock, WallClock};
pub use event::{Event, EventKind};
pub use export::{
    export_chrome_trace, export_jsonl, export_text, validate_chrome_trace, ChromeTraceSummary,
};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS};
pub use recorder::{Level, Recorder, DEFAULT_RING_CAPACITY};
pub use report::NodeObs;
