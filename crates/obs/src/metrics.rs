//! The metrics registry: named counters and power-of-two-bucket
//! histograms behind one snapshot/merge/export surface.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`, and bucket 64 holds the top
/// half-open range ending at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A latency/size histogram with power-of-two buckets.
///
/// Bucketing is exact and cheap (`leading_zeros`), merging is
/// element-wise addition, and the encoding ships only non-zero buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index `value` lands in: 0 for 0, else
    /// `64 - value.leading_zeros()` — so bucket `i ≥ 1` covers exactly
    /// `[2^(i-1), 2^i)`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `index` (`0` for bucket 0,
    /// `2^index - 1` for the rest, saturating at `u64::MAX`).
    pub fn bucket_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The per-bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`) — a bucketed approximation, exact to a factor of
    /// two, which is what power-of-two buckets buy.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Fold `other` into `self`: bucket-wise sum, count/sum added,
    /// min/max widened.  Merging is how per-node histograms become the
    /// cluster-wide view.
    pub fn merge(&mut self, other: &Histogram) {
        for (into, from) in self.counts.iter_mut().zip(other.counts.iter()) {
            *into += from;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// An immutable, mergeable, exportable view of a registry (or of several
/// registries merged together).  Ordering is deterministic (`BTreeMap`),
/// so exports of equal snapshots are byte-identical.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Named monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Named histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// A counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram, if one was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self`: counters add, histograms merge.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Human-readable export: one line per counter, one per histogram.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name} = {value}");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(
                out,
                "{name}: count={} mean={} p50<={} p99<={} max={}",
                hist.count(),
                hist.mean(),
                hist.quantile_bound(0.50),
                hist.quantile_bound(0.99),
                hist.max(),
            );
        }
        out
    }

    /// JSON-lines export: one `{"metric":...,"value":...}` object per
    /// counter and one `{"metric":...,"count":...}` object per histogram.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"metric\":\"{}\",\"value\":{value}}}",
                crate::export::escape_json(name)
            );
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(
                out,
                "{{\"metric\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
                crate::export::escape_json(name),
                hist.count(),
                hist.sum(),
                hist.min(),
                hist.max(),
                hist.quantile_bound(0.50),
                hist.quantile_bound(0.99),
            );
        }
        out
    }

    /// Append the canonical little-endian encoding (the metrics half of
    /// an obs scrape frame; layout in `docs/WIRE_FORMAT.md`).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let write_name = |out: &mut Vec<u8>, name: &str| {
            let bytes = name.as_bytes();
            out.extend_from_slice(&(bytes.len().min(u16::MAX as usize) as u16).to_le_bytes());
            out.extend_from_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
        };
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (name, value) in &self.counters {
            write_name(out, name);
            out.extend_from_slice(&value.to_le_bytes());
        }
        out.extend_from_slice(&(self.histograms.len() as u32).to_le_bytes());
        for (name, hist) in &self.histograms {
            write_name(out, name);
            for word in [hist.count, hist.sum, hist.min, hist.max] {
                out.extend_from_slice(&word.to_le_bytes());
            }
            let nonzero: Vec<(usize, u64)> = hist
                .counts
                .iter()
                .enumerate()
                .filter(|(_, c)| **c != 0)
                .map(|(i, c)| (i, *c))
                .collect();
            out.push(nonzero.len() as u8);
            for (index, count) in nonzero {
                out.push(index as u8);
                out.extend_from_slice(&count.to_le_bytes());
            }
        }
    }

    /// Decode a snapshot produced by [`MetricsSnapshot::encode`],
    /// returning the snapshot and the number of bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(MetricsSnapshot, usize), String> {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], String> {
            if pos + n > bytes.len() {
                return Err(format!(
                    "metrics snapshot truncated at byte {pos} (wanted {n} more)"
                ));
            }
            let slice = &bytes[pos..pos + n];
            pos += n;
            Ok(slice)
        };
        let mut snapshot = MetricsSnapshot::default();

        let counter_count = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
        for _ in 0..counter_count {
            let name_len = u16::from_le_bytes(take(2)?.try_into().expect("2 bytes")) as usize;
            let name = String::from_utf8(take(name_len)?.to_vec())
                .map_err(|_| "metric name is not UTF-8".to_owned())?;
            let value = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
            snapshot.counters.insert(name, value);
        }
        let histogram_count = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
        for _ in 0..histogram_count {
            let name_len = u16::from_le_bytes(take(2)?.try_into().expect("2 bytes")) as usize;
            let name = String::from_utf8(take(name_len)?.to_vec())
                .map_err(|_| "metric name is not UTF-8".to_owned())?;
            let mut hist = Histogram::new();
            hist.count = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
            hist.sum = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
            hist.min = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
            hist.max = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
            let nonzero = take(1)?[0] as usize;
            for _ in 0..nonzero {
                let index = take(1)?[0] as usize;
                if index >= HISTOGRAM_BUCKETS {
                    return Err(format!("histogram bucket index {index} out of range"));
                }
                hist.counts[index] = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
            }
            snapshot.histograms.insert(name, hist);
        }
        Ok((snapshot, pos))
    }
}

/// A thread-safe registry the runtime layers push counters and
/// observations into.  Cheap to share; snapshot to read.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsSnapshot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to the counter `name` (creating it at 0).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Set counter `name` to `value` (last write wins — for gauges
    /// folded in from an end-of-run stats struct).
    pub fn counter_set(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.counters.insert(name.to_owned(), value);
    }

    /// Record one observation into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Fold an already-built snapshot into this registry.
    pub fn merge(&self, other: &MetricsSnapshot) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn observe_and_quantiles() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1108);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!(h.quantile_bound(0.5) >= 2);
        assert!(h.quantile_bound(1.0) >= 1000 / 2);
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.observe(5);
        a.observe(70_000);
        b.observe(5);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.buckets()[Histogram::bucket_index(5)], 2);
        assert_eq!(merged.buckets()[Histogram::bucket_index(70_000)], 1);
    }

    #[test]
    fn registry_snapshot_merge_and_wire_roundtrip() {
        let registry = MetricsRegistry::new();
        registry.counter_add("process.checkpoints", 3);
        registry.counter_add("process.checkpoints", 2);
        registry.observe("checkpoint.pause_ns", 1_500);
        registry.observe("checkpoint.pause_ns", 9_000_000);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("process.checkpoints"), 5);
        assert_eq!(snap.histogram("checkpoint.pause_ns").unwrap().count(), 2);

        let mut other = MetricsSnapshot::default();
        other.counters.insert("process.checkpoints".into(), 7);
        let mut merged = snap.clone();
        merged.merge(&other);
        assert_eq!(merged.counter("process.checkpoints"), 12);

        let mut bytes = Vec::new();
        snap.encode(&mut bytes);
        let (back, consumed) = MetricsSnapshot::decode(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(back, snap);
        assert!(MetricsSnapshot::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn text_and_jsonl_exports_are_stable() {
        let registry = MetricsRegistry::new();
        registry.counter_add("b.second", 2);
        registry.counter_add("a.first", 1);
        registry.observe("lat", 8);
        let snap = registry.snapshot();
        let text = snap.to_text();
        // BTreeMap ordering: deterministic, sorted by name.
        assert!(text.find("a.first").unwrap() < text.find("b.second").unwrap());
        let jsonl = snap.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"metric\":\"lat\""));
    }
}
