//! The flight recorder: a fixed-capacity ring buffer of typed events
//! behind a one-branch level gate.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::{ClockSource, FixedClock, WallClock};
use crate::event::{Event, EventKind};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::report::NodeObs;

/// Default ring capacity: enough for every checkpoint/GC/message event
/// of a sizeable run without unbounded growth.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// How much the recorder captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum Level {
    /// Record nothing; [`Recorder::record`] is a single branch.
    #[default]
    Off = 0,
    /// Metrics only: counters and histograms, no event ring.
    Metrics = 1,
    /// Metrics plus the full flight-recorder event stream.
    Trace = 2,
}

impl Level {
    /// Decode the wire byte (unknown bytes clamp to [`Level::Off`]).
    pub fn from_u8(byte: u8) -> Level {
        match byte {
            1 => Level::Metrics,
            2 => Level::Trace,
            _ => Level::Off,
        }
    }
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[derive(Debug)]
struct Inner {
    level: AtomicU8,
    node: u32,
    clock: Arc<dyn ClockSource>,
    ring: Mutex<Ring>,
    metrics: MetricsRegistry,
}

/// A per-node (or per-process) flight recorder plus metrics registry.
///
/// Cloning is cheap (an `Arc` bump) and clones share state, so the same
/// recorder can be handed to a `Heap`, its `Process` and the checkpoint
/// pipeline.  When the level is [`Level::Off`], [`Recorder::record`]
/// costs one relaxed atomic load and a branch.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Recorder {
    /// A recorder for `node` at `level`, stamping events from a fresh
    /// [`WallClock`] with the default ring capacity.
    pub fn new(node: u32, level: Level) -> Recorder {
        Recorder::with_clock(node, level, Arc::new(WallClock::new()))
    }

    /// A recorder with an explicit [`ClockSource`] — in deterministic
    /// cluster mode this is the node's seeded virtual clock.
    pub fn with_clock(node: u32, level: Level, clock: Arc<dyn ClockSource>) -> Recorder {
        Recorder::with_capacity(node, level, clock, DEFAULT_RING_CAPACITY)
    }

    /// Full-control constructor: explicit ring capacity.
    pub fn with_capacity(
        node: u32,
        level: Level,
        clock: Arc<dyn ClockSource>,
        capacity: usize,
    ) -> Recorder {
        Recorder {
            inner: Arc::new(Inner {
                level: AtomicU8::new(level as u8),
                node,
                clock,
                ring: Mutex::new(Ring {
                    events: VecDeque::with_capacity(capacity.min(DEFAULT_RING_CAPACITY)),
                    capacity: capacity.max(1),
                    dropped: 0,
                }),
                metrics: MetricsRegistry::new(),
            }),
        }
    }

    /// A permanently-cheap disabled recorder (no wall-clock read even at
    /// construction) — the default carried by heaps and processes.
    pub fn disabled() -> Recorder {
        Recorder::with_capacity(0, Level::Off, Arc::new(FixedClock::at(0)), 1)
    }

    /// The node this recorder stamps into events.
    pub fn node(&self) -> u32 {
        self.inner.node
    }

    /// Current capture level.
    pub fn level(&self) -> Level {
        Level::from_u8(self.inner.level.load(Ordering::Relaxed))
    }

    /// Change the capture level at runtime.
    pub fn set_level(&self, level: Level) {
        self.inner.level.store(level as u8, Ordering::Relaxed);
    }

    /// Whether the event ring is capturing ([`Level::Trace`]).
    #[inline]
    pub fn tracing(&self) -> bool {
        self.inner.level.load(Ordering::Relaxed) >= Level::Trace as u8
    }

    /// Whether metrics are capturing ([`Level::Metrics`] or above).
    #[inline]
    pub fn metrics_on(&self) -> bool {
        self.inner.level.load(Ordering::Relaxed) >= Level::Metrics as u8
    }

    /// Record one event.  When the level is below [`Level::Trace`] this
    /// is a single relaxed load and a branch — no clock read, no lock.
    #[inline]
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        if self.inner.level.load(Ordering::Relaxed) < Level::Trace as u8 {
            return;
        }
        self.record_slow(kind, a, b);
    }

    #[cold]
    fn record_slow(&self, kind: EventKind, a: u64, b: u64) {
        let event = Event {
            ts_us: self.inner.clock.now_us(),
            node: self.inner.node,
            kind,
            a,
            b,
        };
        let mut ring = self.inner.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.push(event);
    }

    /// Add `delta` to metrics counter `name` (no-op below
    /// [`Level::Metrics`]).
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if self.metrics_on() {
            self.inner.metrics.counter_add(name, delta);
        }
    }

    /// Set metrics counter `name` to `value` (no-op below
    /// [`Level::Metrics`]).
    #[inline]
    pub fn counter_set(&self, name: &str, value: u64) {
        if self.metrics_on() {
            self.inner.metrics.counter_set(name, value);
        }
    }

    /// Record one histogram observation (no-op below
    /// [`Level::Metrics`]).
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if self.metrics_on() {
            self.inner.metrics.observe(name, value);
        }
    }

    /// A copy of the captured event stream, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let ring = self.inner.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.events.iter().copied().collect()
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .dropped
    }

    /// A point-in-time copy of the metrics registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Direct access to the registry (for folding in end-of-run stats
    /// structs regardless of level).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Package everything captured so far into a scrape-able
    /// [`NodeObs`] report.
    pub fn snapshot(&self) -> NodeObs {
        NodeObs {
            node: self.inner.node,
            metrics: self.metrics(),
            events: self.events(),
            dropped: self.dropped(),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_captures_nothing() {
        let recorder = Recorder::disabled();
        recorder.record(EventKind::Freeze, 1, 2);
        recorder.counter_add("x", 1);
        recorder.observe("h", 9);
        assert!(recorder.events().is_empty());
        assert!(recorder.metrics().is_empty());
        assert_eq!(recorder.level(), Level::Off);
    }

    #[test]
    fn metrics_level_skips_the_ring() {
        let recorder = Recorder::new(3, Level::Metrics);
        recorder.record(EventKind::Freeze, 1, 2);
        recorder.counter_add("x", 5);
        assert!(recorder.events().is_empty());
        assert_eq!(recorder.metrics().counter("x"), 5);
    }

    #[test]
    fn trace_level_captures_in_order_with_virtual_clock() {
        let clock = Arc::new(FixedClock::at(10));
        let recorder = Recorder::with_clock(7, Level::Trace, clock.clone());
        recorder.record(EventKind::CheckpointBegin, 1, 0);
        clock.set(25);
        recorder.record(EventKind::CheckpointEnd, 1, 0);
        let events = recorder.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ts_us, 10);
        assert_eq!(events[1].ts_us, 25);
        assert!(events.iter().all(|e| e.node == 7));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let recorder = Recorder::with_capacity(0, Level::Trace, Arc::new(FixedClock::at(0)), 2);
        recorder.record(EventKind::GcMinor, 1, 0);
        recorder.record(EventKind::GcMinor, 2, 0);
        recorder.record(EventKind::GcMinor, 3, 0);
        let events = recorder.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].a, 2);
        assert_eq!(events[1].a, 3);
        assert_eq!(recorder.dropped(), 1);
    }

    #[test]
    fn level_changes_apply_live_and_clones_share_state() {
        let recorder = Recorder::new(0, Level::Off);
        let clone = recorder.clone();
        recorder.record(EventKind::Freeze, 1, 1);
        assert!(clone.events().is_empty());
        clone.set_level(Level::Trace);
        recorder.record(EventKind::Freeze, 2, 2);
        assert_eq!(clone.events().len(), 1);
    }
}
