//! The per-node scrape payload: everything a node's recorder captured,
//! packaged for shipping over the control connection.

use crate::event::Event;
use crate::metrics::MetricsSnapshot;

/// One node's observability report: its metrics snapshot plus the flight
/// recorder's event stream.  This is the payload of an `ObsPush` /
/// `ObsReply` trace frame (byte layout in `docs/WIRE_FORMAT.md`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeObs {
    /// Which node this report came from.
    pub node: u32,
    /// The node's metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// The node's flight-recorder events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring before this snapshot was taken.
    pub dropped: u64,
}

impl NodeObs {
    /// Encode into the canonical little-endian scrape payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.events.len() * Event::ENCODED_LEN);
        out.extend_from_slice(&self.node.to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        self.metrics.encode(&mut out);
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for event in &self.events {
            event.encode(&mut out);
        }
        out
    }

    /// Decode a report produced by [`NodeObs::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<NodeObs, String> {
        if bytes.len() < 12 {
            return Err("obs report truncated before header".to_owned());
        }
        let node = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        let dropped = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
        let (metrics, metrics_len) = MetricsSnapshot::decode(&bytes[12..])?;
        let mut pos = 12 + metrics_len;
        if pos + 4 > bytes.len() {
            return Err("obs report truncated before event count".to_owned());
        }
        let event_count =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        pos += 4;
        if bytes.len() - pos != event_count * Event::ENCODED_LEN {
            return Err(format!(
                "obs report event section is {} bytes, expected {} events * {}",
                bytes.len() - pos,
                event_count,
                Event::ENCODED_LEN
            ));
        }
        let mut events = Vec::with_capacity(event_count);
        for _ in 0..event_count {
            events.push(Event::decode(&bytes[pos..pos + Event::ENCODED_LEN])?);
            pos += Event::ENCODED_LEN;
        }
        Ok(NodeObs {
            node,
            metrics,
            events,
            dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn report_roundtrips_through_bytes() {
        let registry = MetricsRegistry::new();
        registry.counter_add("checkpoints", 4);
        registry.observe("pause_ns", 12_345);
        let report = NodeObs {
            node: 2,
            metrics: registry.snapshot(),
            events: vec![
                Event {
                    ts_us: 5,
                    node: 2,
                    kind: EventKind::CheckpointBegin,
                    a: 1,
                    b: 0,
                },
                Event {
                    ts_us: 9,
                    node: 2,
                    kind: EventKind::CheckpointEnd,
                    a: 1,
                    b: 0,
                },
            ],
            dropped: 3,
        };
        let bytes = report.to_bytes();
        let back = NodeObs::from_bytes(&bytes).unwrap();
        assert_eq!(back, report);
        assert!(NodeObs::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(NodeObs::from_bytes(&bytes[..8]).is_err());
    }

    #[test]
    fn empty_report_roundtrips() {
        let report = NodeObs::default();
        assert_eq!(NodeObs::from_bytes(&report.to_bytes()).unwrap(), report);
    }
}
