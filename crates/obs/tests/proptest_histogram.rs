//! Property tests for the power-of-two histogram: bucket monotonicity,
//! exact boundary placement, and merge-equals-sum.

use mojave_obs::{Histogram, MetricsSnapshot, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Bucket index is monotone in the value: v <= w implies
    /// bucket(v) <= bucket(w), and every index is in range.
    #[test]
    fn bucket_index_is_monotone(v in any::<u64>(), w in any::<u64>()) {
        let (lo, hi) = if v <= w { (v, w) } else { (w, v) };
        let bl = Histogram::bucket_index(lo);
        let bh = Histogram::bucket_index(hi);
        prop_assert!(bl <= bh);
        prop_assert!(bh < HISTOGRAM_BUCKETS);
    }

    /// Exact boundary placement: 2^k lands in bucket k+1 and 2^k - 1
    /// lands in bucket k (for k >= 1), i.e. bucket i covers exactly
    /// [2^(i-1), 2^i).
    #[test]
    fn powers_of_two_sit_on_bucket_boundaries(k in 1u32..64) {
        let pow = 1u64 << k;
        prop_assert_eq!(Histogram::bucket_index(pow), k as usize + 1);
        prop_assert_eq!(Histogram::bucket_index(pow - 1), k as usize);
        // And every value inside the bucket's range maps back into it.
        prop_assert!(Histogram::bucket_bound(k as usize) >= pow - 1);
    }

    /// Merging two histograms is element-wise sum: merged buckets,
    /// count and sum all equal observing the concatenation directly.
    #[test]
    fn merge_equals_observing_the_concatenation(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
        ys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for x in &xs { a.observe(*x); }
        for y in &ys { b.observe(*y); }
        let mut merged = a.clone();
        merged.merge(&b);

        let mut direct = Histogram::new();
        for v in xs.iter().chain(ys.iter()) { direct.observe(*v); }

        prop_assert_eq!(merged.buckets(), direct.buckets());
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert_eq!(merged.sum(), direct.sum());
        prop_assert_eq!(merged.min(), direct.min());
        prop_assert_eq!(merged.max(), direct.max());
    }

    /// Observations land where bucket_index says and quantile bounds
    /// bracket the true max to within a factor of two.
    #[test]
    fn observations_land_in_their_bucket(vs in proptest::collection::vec(any::<u64>(), 1..64)) {
        let mut h = Histogram::new();
        for v in &vs { h.observe(*v); }
        let total: u64 = h.buckets().iter().sum();
        prop_assert_eq!(total, vs.len() as u64);
        for v in &vs {
            prop_assert!(h.buckets()[Histogram::bucket_index(*v)] > 0);
        }
        let max = *vs.iter().max().unwrap();
        prop_assert!(h.quantile_bound(1.0) >= max / 2);
    }

    /// Snapshot merge matches histogram merge and survives the wire
    /// encoding.
    #[test]
    fn snapshot_merge_and_roundtrip(
        xs in proptest::collection::vec(any::<u64>(), 0..32),
        ys in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let mut a = MetricsSnapshot::default();
        let mut b = MetricsSnapshot::default();
        let ha = a.histograms.entry("lat".to_owned()).or_default();
        for x in &xs { ha.observe(*x); }
        let hb = b.histograms.entry("lat".to_owned()).or_default();
        for y in &ys { hb.observe(*y); }
        a.counters.insert("n".to_owned(), xs.len() as u64);
        b.counters.insert("n".to_owned(), ys.len() as u64);

        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.counter("n"), (xs.len() + ys.len()) as u64);
        prop_assert_eq!(
            merged.histogram("lat").unwrap().count(),
            (xs.len() + ys.len()) as u64
        );

        let mut bytes = Vec::new();
        merged.encode(&mut bytes);
        let (back, used) = MetricsSnapshot::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, merged);
    }
}
