//! # mojave-runtime
//!
//! The **asynchronous checkpoint/migration pipeline**: checkpoints leave
//! the mutator's critical path.
//!
//! Synchronously, a checkpoint costs the full pack → compress → sink round
//! trip — exactly the stop-the-world pause the paper's §4.3 copy-on-write
//! machinery was built to avoid.  This crate splits a checkpoint into its
//! two natural halves:
//!
//! 1. a **zero-pause snapshot** ([`mojave_heap::Heap::freeze`]): block
//!    payloads are reference-counted, so freezing the program-visible heap
//!    state is O(pointer-table) pointer work.  The mutator resumes
//!    immediately; its first write to each still-shared block pays that
//!    block's copy lazily — first write clones, frozen originals stay
//!    readable, the speculation-level discipline opened outward;
//! 2. the **deferred encode + delivery**
//!    ([`mojave_core::SnapshotPack::into_image`]): codec choice, slab
//!    staging, compression and the [`mojave_core::MigrationSink`] delivery
//!    run on a [`CheckpointPipeline`] worker thread, behind a bounded
//!    queue with an explicit [`BackpressurePolicy`] (block, or coalesce
//!    superseded deltas).
//!
//! [`AsyncSink`] packages the pipeline as a [`mojave_core::MigrationSink`]
//! adapter around any inner sink; a process opts in with
//! [`mojave_core::process::ProcessConfig::async_checkpoints`].  For
//! deterministic replays, [`PipelineConfig::drain_after_submit`] turns
//! every submission into a barrier so grid replay digests are provably
//! identical with the pipeline on or off.
//!
//! ```
//! use mojave_core::{MigrationSink, InMemorySink, Process, ProcessConfig};
//! use mojave_heap::Word;
//! use mojave_fir::MigrateProtocol;
//! use mojave_runtime::{AsyncSink, PipelineConfig};
//!
//! // A tiny program, packed through the asynchronous path by hand.
//! let program = mojave_lang::compile_source("int main() { return 7; }").unwrap();
//! let store = mojave_core::CheckpointStore::new();
//! let inner = InMemorySink::with_store(store.clone());
//! let mut process = Process::new(program, ProcessConfig::default())
//!     .unwrap()
//!     .with_sink(Box::new(AsyncSink::new(Box::new(inner), PipelineConfig::default())));
//!
//! let pack = process.pack_snapshot(0, Word::Fun(0), &[], None).unwrap();
//! // The freeze already happened (zero-pause); encode + store run on the
//! // pipeline worker while this thread is free to keep executing.
//! // (Processes do this automatically via `ProcessConfig::async_checkpoints`.)
//! # let mut sink = AsyncSink::new(
//! #     Box::new(InMemorySink::with_store(store.clone())), PipelineConfig::default());
//! # let outcome = sink.deliver_deferred(MigrateProtocol::Checkpoint, "ck", pack);
//! # sink.flush();
//! # assert!(store.contains("ck"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
mod sink;

pub use pipeline::{BackpressurePolicy, CheckpointPipeline, PipelineConfig};
pub use sink::AsyncSink;
