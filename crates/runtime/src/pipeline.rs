//! The checkpoint pipeline: a bounded queue of [`SnapshotPack`]s consumed
//! by a worker thread that runs the deferred encode (codec choice, slab
//! staging, compression) and the sink delivery.

use mojave_core::{DeliveryOutcome, MigrationSink, PipelineStats, SnapshotPack};
use mojave_fir::MigrateProtocol;
use mojave_obs::{EventKind, Recorder};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// What `submit` does when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the mutator until a worker frees a slot.  Never loses a
    /// checkpoint; the pause is bounded by one in-flight encode.
    #[default]
    Block,
    /// Replace the newest **queued delta** with the incoming checkpoint
    /// and account it in [`PipelineStats::coalesced`].
    ///
    /// Dropping a queued-but-unstarted *delta* is always safe: deltas are
    /// cumulative since their full base, so any newer checkpoint of the
    /// same process strictly supersedes an older queued delta, and
    /// nothing ever resolves against a delta (only against full images).
    /// Queued **full** images are never dropped — a full may be the
    /// pinned base of deltas submitted after it, and the FIFO order is
    /// what guarantees the base is stored before those deltas.  When the
    /// queue holds only fulls, the policy falls back to blocking.
    CoalesceLatest,
}

/// Configuration of a [`CheckpointPipeline`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Maximum checkpoints queued ahead of the worker (≥ 1).
    pub queue_capacity: usize,
    /// What to do when the queue is full.
    pub backpressure: BackpressurePolicy,
    /// Drain the pipeline inside every deferred delivery, making the
    /// asynchronous path a **barrier**: the submission returns only after
    /// its checkpoint is durably delivered, and the returned outcome is
    /// the real one instead of the optimistic `Stored`.
    ///
    /// This is the determinism switch: with it, a deterministic-mode grid
    /// replay interleaves checkpoint side effects (store writes, network
    /// accounting, failure injection) at exactly the points the
    /// synchronous path would, so replay digests are identical with the
    /// pipeline on or off.  It deliberately gives back the pause benefit
    /// — replay proofs buy determinism with latency.
    pub drain_after_submit: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            queue_capacity: 4,
            backpressure: BackpressurePolicy::default(),
            drain_after_submit: false,
        }
    }
}

/// One queued checkpoint: where it goes, the frozen state, and the slot
/// its real delivery outcome lands in.
struct Job {
    protocol: MigrateProtocol,
    target: String,
    pack: SnapshotPack,
    outcome: Arc<OnceLock<DeliveryOutcome>>,
}

struct State {
    queue: VecDeque<Job>,
    /// Whether the worker is currently encoding/delivering a job.
    in_flight: bool,
    shutdown: bool,
    stats: PipelineStats,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is queued (or shutdown requested).
    job_ready: Condvar,
    /// Signalled when the worker takes a job (queue space available).
    space_ready: Condvar,
    /// Signalled when the worker finishes a job (drain waits here).
    idle: Condvar,
    /// Flight recorder for queue-depth samples and worker-side
    /// encode/deliver events.  Set at most once; absent = silent.
    recorder: OnceLock<Recorder>,
}

/// A single-worker checkpoint pipeline.
///
/// One worker, deliberately: checkpoints of one process form an ordered
/// chain (a delta must reach the store after the full it pins), and FIFO
/// execution is the cheapest way to keep that invariant.  Concurrency
/// comes from the pipeline overlapping with the *mutator*, not from
/// encoding two checkpoints of the same process at once.
///
/// Dropping the pipeline drains it first, so accepted checkpoints are
/// durable once the owner (normally an
/// [`AsyncSink`](crate::AsyncSink) inside a finished [`mojave_core::Process`])
/// goes away.
pub struct CheckpointPipeline {
    shared: Arc<Shared>,
    config: PipelineConfig,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for CheckpointPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointPipeline")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl CheckpointPipeline {
    /// Spawn the worker thread, delivering into `sink`.
    ///
    /// The sink is shared behind a mutex because base negotiation
    /// (`has_base`) and synchronous deliveries still reach it from the
    /// mutator thread; the worker holds the lock only for the delivery
    /// itself, never during the encode.
    pub fn new(sink: Arc<Mutex<Box<dyn MigrationSink + Send>>>, config: PipelineConfig) -> Self {
        let config = PipelineConfig {
            queue_capacity: config.queue_capacity.max(1),
            ..config
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                in_flight: false,
                shutdown: false,
                stats: PipelineStats::default(),
            }),
            job_ready: Condvar::new(),
            space_ready: Condvar::new(),
            idle: Condvar::new(),
            recorder: OnceLock::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = thread::Builder::new()
            .name("mojave-ckpt-pipeline".into())
            .spawn(move || worker_loop(worker_shared, sink))
            .expect("spawn checkpoint pipeline worker");
        CheckpointPipeline {
            shared,
            config,
            worker: Some(worker),
        }
    }

    /// Queue a checkpoint for deferred encode + delivery, applying the
    /// configured backpressure policy when the queue is full.  Returns
    /// the slot the worker fills with the real [`DeliveryOutcome`].
    ///
    /// The mutator-side cost of the whole submission — the heap freeze
    /// recorded in the pack plus any blocking on a full queue — is
    /// accounted into [`PipelineStats::pause_ns`].
    pub fn submit(
        &self,
        protocol: MigrateProtocol,
        target: &str,
        pack: SnapshotPack,
    ) -> Arc<OnceLock<DeliveryOutcome>> {
        let submit_start = Instant::now();
        let outcome = Arc::new(OnceLock::new());
        let job = Job {
            protocol,
            target: target.to_owned(),
            pack,
            outcome: Arc::clone(&outcome),
        };
        let mut state = self.shared.state.lock().expect("pipeline state lock");
        state.stats.submitted += 1;
        state.stats.pause_ns += job.pack.freeze_ns;
        let mut job = Some(job);
        loop {
            if state.queue.len() < self.config.queue_capacity {
                state
                    .queue
                    .push_back(job.take().expect("job still pending"));
                break;
            }
            if self.config.backpressure == BackpressurePolicy::CoalesceLatest
                && state.queue.back().is_some_and(|old| old.pack.is_delta())
            {
                let superseded = state.queue.pop_back().expect("checked non-empty");
                // Not a failure: the incoming checkpoint strictly covers
                // the dropped delta's state, and the sink never saw it.
                // Waiters distinguish this from a sink error, which would
                // call for a full-image fallback.
                let _ = superseded.outcome.set(DeliveryOutcome::Superseded);
                state.stats.coalesced += 1;
                state
                    .queue
                    .push_back(job.take().expect("job still pending"));
                break;
            }
            state = self
                .shared
                .space_ready
                .wait(state)
                .expect("pipeline state lock");
        }
        state.stats.queue_depth = state.queue.len();
        state.stats.queue_depth_max = state.stats.queue_depth_max.max(state.queue.len());
        state.stats.pause_ns += submit_start.elapsed().as_nanos() as u64;
        let depth = state.queue.len() as u64;
        drop(state);
        if let Some(recorder) = self.shared.recorder.get() {
            recorder.record(
                EventKind::QueueDepth,
                depth,
                self.config.queue_capacity as u64,
            );
        }
        self.shared.job_ready.notify_all();
        outcome
    }

    /// Attach a flight recorder: queue-depth samples at every submit,
    /// encode/deliver events from the worker.  At most one recorder per
    /// pipeline; later calls are ignored.
    pub fn set_recorder(&self, recorder: Recorder) {
        let _ = self.shared.recorder.set(recorder);
    }

    /// Block until the queue is empty and the worker is idle — every
    /// previously submitted checkpoint is encoded and delivered.
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().expect("pipeline state lock");
        while !state.queue.is_empty() || state.in_flight {
            state = self.shared.idle.wait(state).expect("pipeline state lock");
        }
    }

    /// A snapshot of the pipeline counters.
    pub fn stats(&self) -> PipelineStats {
        let state = self.shared.state.lock().expect("pipeline state lock");
        PipelineStats {
            queue_depth: state.queue.len(),
            ..state.stats
        }
    }
}

impl Drop for CheckpointPipeline {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pipeline state lock");
            state.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        if let Some(worker) = self.worker.take() {
            // The worker drains the remaining queue before honouring the
            // shutdown flag, so accepted checkpoints are never lost.
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, sink: Arc<Mutex<Box<dyn MigrationSink + Send>>>) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pipeline state lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight = true;
                    state.stats.queue_depth = state.queue.len();
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.job_ready.wait(state).expect("pipeline state lock");
            }
        };
        shared.space_ready.notify_all();

        // The expensive half, off the mutator thread: codec choice, slab
        // staging, compression — then the delivery.
        let encode_start = Instant::now();
        let encoded = job.pack.into_image();
        let encode_ns = encode_start.elapsed().as_nanos() as u64;
        let (outcome, wire) = match encoded {
            Ok(image) => {
                let wire = image.heap_payload_wire_stats();
                let outcome = sink.lock().expect("pipeline sink lock").deliver(
                    job.protocol,
                    &job.target,
                    &image,
                );
                (outcome, Some(wire))
            }
            Err(e) => (
                DeliveryOutcome::Failed(format!("deferred encode failed: {e}")),
                None,
            ),
        };

        if let Some(recorder) = shared.recorder.get() {
            if let Some((raw, stored)) = wire {
                recorder.record(EventKind::Encode, raw, stored);
            }
            recorder.record(
                EventKind::Deliver,
                outcome.obs_code(),
                wire.map_or(0, |(_, stored)| stored),
            );
            recorder.observe("pipeline.encode_ns", encode_ns);
        }

        let mut state = shared.state.lock().expect("pipeline state lock");
        state.stats.encode_ns += encode_ns;
        state.stats.completed += 1;
        if let Some((raw, stored)) = wire {
            state.stats.bytes_raw += raw;
            state.stats.bytes_stored += stored;
        }
        if matches!(outcome, DeliveryOutcome::Failed(_)) {
            state.stats.failed += 1;
        }
        state.in_flight = false;
        let _ = job.outcome.set(outcome);
        drop(state);
        shared.idle.notify_all();
    }
}
