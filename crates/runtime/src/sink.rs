//! [`AsyncSink`]: the adapter that turns any [`MigrationSink`] into an
//! asynchronous one by routing deferred checkpoints through a
//! [`CheckpointPipeline`].

use crate::pipeline::{CheckpointPipeline, PipelineConfig};
use mojave_core::{DeliveryOutcome, MigrationImage, MigrationSink, PipelineStats, SnapshotPack};
use mojave_fir::MigrateProtocol;
use mojave_wire::CodecSet;
use std::sync::{Arc, Mutex};

/// Wraps any [`MigrationSink`] with an asynchronous checkpoint pipeline.
///
/// * [`MigrationSink::deliver_deferred`] enqueues the frozen snapshot and
///   returns immediately with an optimistic `Stored` (the pipeline worker
///   encodes and delivers concurrently with the mutator).  With
///   [`PipelineConfig::drain_after_submit`] it instead blocks until the
///   delivery completed and returns the real outcome — the determinism
///   barrier deterministic grid replays rely on.
/// * Synchronous deliveries (`migrate://`, `suspend://`, or checkpoints
///   from a process without `async_checkpoints`) first drain the pipeline
///   — a suspend image must land *after* every checkpoint submitted
///   before it — then forward to the inner sink.
/// * `has_base` / `accepted_codecs` forward to the inner sink.  During a
///   backlog a just-submitted full checkpoint is not in the store yet, so
///   `has_base` answers false and the process emits full images — more
///   bytes, never a wrong delta.
pub struct AsyncSink {
    inner: Arc<Mutex<Box<dyn MigrationSink + Send>>>,
    pipeline: CheckpointPipeline,
    drain_after_submit: bool,
}

impl std::fmt::Debug for AsyncSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncSink")
            .field("pipeline", &self.pipeline)
            .finish()
    }
}

impl AsyncSink {
    /// Wrap `inner`, spawning the pipeline worker.
    pub fn new(inner: Box<dyn MigrationSink + Send>, config: PipelineConfig) -> Self {
        let inner = Arc::new(Mutex::new(inner));
        let pipeline = CheckpointPipeline::new(Arc::clone(&inner), config);
        AsyncSink {
            inner,
            pipeline,
            drain_after_submit: config.drain_after_submit,
        }
    }

    /// The pipeline counters (also available through
    /// [`MigrationSink::pipeline_stats`]).
    pub fn stats(&self) -> PipelineStats {
        self.pipeline.stats()
    }

    /// Block until every accepted checkpoint is encoded and delivered.
    pub fn drain(&self) {
        self.pipeline.drain();
    }

    /// Attach a flight recorder to the pipeline (queue-depth samples and
    /// worker-side encode/deliver events).
    pub fn set_recorder(&self, recorder: mojave_obs::Recorder) {
        self.pipeline.set_recorder(recorder);
    }
}

impl MigrationSink for AsyncSink {
    fn deliver(
        &mut self,
        protocol: MigrateProtocol,
        target: &str,
        image: &MigrationImage,
    ) -> DeliveryOutcome {
        // Ordering: a synchronous delivery (e.g. the final suspend image)
        // must not overtake checkpoints already accepted by the pipeline.
        self.pipeline.drain();
        self.inner
            .lock()
            .expect("async sink inner lock")
            .deliver(protocol, target, image)
    }

    fn has_base(&self, base: &str, base_fingerprint: u64) -> bool {
        self.inner
            .lock()
            .expect("async sink inner lock")
            .has_base(base, base_fingerprint)
    }

    fn accepted_codecs(&self) -> CodecSet {
        self.inner
            .lock()
            .expect("async sink inner lock")
            .accepted_codecs()
    }

    fn deliver_deferred(
        &mut self,
        protocol: MigrateProtocol,
        target: &str,
        pack: SnapshotPack,
    ) -> DeliveryOutcome {
        let outcome = self.pipeline.submit(protocol, target, pack);
        if self.drain_after_submit {
            self.pipeline.drain();
            outcome
                .get()
                .cloned()
                .unwrap_or_else(|| DeliveryOutcome::Failed("pipeline dropped the job".into()))
        } else {
            // Optimistic: failures surface in `PipelineStats::failed` and
            // in the job's outcome slot, not in the mutator's control
            // flow — exactly like a write-behind cache.
            DeliveryOutcome::Stored
        }
    }

    fn flush(&mut self) {
        self.pipeline.drain();
    }

    fn pipeline_stats(&self) -> Option<PipelineStats> {
        Some(self.pipeline.stats())
    }
}
