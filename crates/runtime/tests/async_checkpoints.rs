//! Integration tests for the asynchronous checkpoint pipeline: end-to-end
//! process runs, backpressure policies, drain barriers and failure
//! handling.

use mojave_core::{
    CheckpointStore, DeliveryOutcome, InMemorySink, MigrationImage, MigrationSink, Process,
    ProcessConfig, RunOutcome, SnapshotPack,
};
use mojave_fir::MigrateProtocol;
use mojave_heap::Word;
use mojave_runtime::{AsyncSink, BackpressurePolicy, CheckpointPipeline, PipelineConfig};
use mojave_wire::CodecSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A MojaveC worker that mutates an array between rotating-name
/// checkpoints — the delta pipeline's natural shape.
fn checkpointing_source(rounds: usize) -> String {
    format!(
        r#"
int main() {{
    int[] data = alloc_int(256);
    int acc = 0;
    int i = 0;
    while (i < {rounds}) {{
        int j = 0;
        while (j < 32) {{
            data[i * 32 + j] = i * 100 + j;
            j = j + 1;
        }}
        acc = acc + data[i * 32 + 7];
        checkpoint(str_concat("ck-", int_to_str(i)));
        i = i + 1;
    }}
    return acc;
}}
"#
    )
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Sync,
    /// Optimistic pipeline: the mutator never waits for deliveries.
    Async,
    /// Pipeline with the determinism barrier: every submission drains.
    AsyncBarrier,
}

fn run_checkpointing(mode: Mode, store: CheckpointStore) -> (RunOutcome, Process) {
    let program = mojave_lang::compile_source(&checkpointing_source(6)).expect("compiles");
    let config = ProcessConfig {
        delta_checkpoints: true,
        async_checkpoints: mode != Mode::Sync,
        ..ProcessConfig::default()
    };
    let inner = InMemorySink::with_store(store);
    let sink: Box<dyn MigrationSink> = match mode {
        Mode::Sync => Box::new(inner),
        Mode::Async => Box::new(AsyncSink::new(Box::new(inner), PipelineConfig::default())),
        Mode::AsyncBarrier => Box::new(AsyncSink::new(
            Box::new(inner),
            PipelineConfig {
                drain_after_submit: true,
                ..PipelineConfig::default()
            },
        )),
    };
    let mut process = Process::new(program, config)
        .expect("verifies")
        .with_sink(sink);
    let outcome = process.run().expect("runs");
    (outcome, process)
}

#[test]
fn async_checkpoints_match_sync_semantics_and_resume() {
    let sync_store = CheckpointStore::new();
    let (sync_outcome, sync_process) = run_checkpointing(Mode::Sync, sync_store.clone());
    let async_store = CheckpointStore::new();
    let (async_outcome, async_process) = run_checkpointing(Mode::Async, async_store.clone());

    assert_eq!(sync_outcome, async_outcome);
    assert_eq!(sync_store.names(), async_store.names());
    let sync_stats = sync_process.stats();
    let async_stats = async_process.stats();
    assert_eq!(sync_stats.checkpoints, async_stats.checkpoints);
    // The optimistic pipeline may substitute fulls for deltas while a base
    // fingerprint is still pending — more bytes, never a wrong image — so
    // only an upper bound holds here (the barrier test below pins the
    // exact delta chain).
    assert!(async_stats.delta_checkpoints <= sync_stats.delta_checkpoints);
    // Pause/encode accounting: the async mutator pause excludes the encode,
    // which lands in the worker-side counter instead.
    assert!(async_stats.checkpoint_pause_ns > 0);
    assert!(async_stats.checkpoint_encode_ns > 0);

    // Every async checkpoint is resolvable, and resuming from the *last*
    // one replays the remaining rounds to the same exit code.
    for name in async_store.names() {
        async_store.load(&name).expect("checkpoint resolvable");
    }
    let image = async_store.load("ck-5").expect("last checkpoint");
    let mut resumed = Process::from_image(image, ProcessConfig::default()).expect("unpacks");
    let outcome = resumed.run().expect("resumes");
    assert_eq!(outcome, sync_outcome);
}

#[test]
fn barrier_mode_reproduces_the_sync_delta_chain_exactly() {
    let sync_store = CheckpointStore::new();
    let (sync_outcome, sync_process) = run_checkpointing(Mode::Sync, sync_store.clone());
    let barrier_store = CheckpointStore::new();
    let (barrier_outcome, barrier_process) =
        run_checkpointing(Mode::AsyncBarrier, barrier_store.clone());

    // With the drain barrier every base fingerprint is known before the
    // next checkpoint, so the full/delta pattern matches the synchronous
    // run exactly — the property deterministic grid replays build on.
    assert_eq!(sync_outcome, barrier_outcome);
    let sync_stats = sync_process.stats();
    let barrier_stats = barrier_process.stats();
    assert_eq!(sync_stats.checkpoints, barrier_stats.checkpoints);
    assert_eq!(
        sync_stats.delta_checkpoints,
        barrier_stats.delta_checkpoints
    );
    assert!(barrier_stats.delta_checkpoints > 0);
    assert_eq!(sync_store.names(), barrier_store.names());
    for name in barrier_store.names() {
        barrier_store.load(&name).expect("checkpoint resolvable");
    }
}

#[test]
fn async_pipeline_stats_are_exposed_through_the_process_sink() {
    let store = CheckpointStore::new();
    let (_, process) = run_checkpointing(Mode::Async, store);
    // run() flushed the pipeline, so every submission completed.
    let stats = process.stats();
    assert_eq!(stats.checkpoints, 6);
    assert_eq!(stats.migration_failures, 0);
}

/// A sink wrapper that sleeps before delegating, so tests can hold jobs
/// in the pipeline queue deterministically long enough to observe
/// backpressure.
struct SlowSink {
    inner: InMemorySink,
    delay: Duration,
}

impl MigrationSink for SlowSink {
    fn deliver(
        &mut self,
        protocol: MigrateProtocol,
        target: &str,
        image: &MigrationImage,
    ) -> DeliveryOutcome {
        std::thread::sleep(self.delay);
        self.inner.deliver(protocol, target, image)
    }

    fn has_base(&self, base: &str, base_fingerprint: u64) -> bool {
        self.inner.has_base(base, base_fingerprint)
    }

    fn accepted_codecs(&self) -> CodecSet {
        self.inner.accepted_codecs()
    }
}

/// A sink that fails every delivery.
struct FailingSink;

impl MigrationSink for FailingSink {
    fn deliver(
        &mut self,
        _protocol: MigrateProtocol,
        _target: &str,
        _image: &MigrationImage,
    ) -> DeliveryOutcome {
        DeliveryOutcome::Failed("injected sink failure".into())
    }
}

/// Build a full-image SnapshotPack from a small populated process.
fn sample_pack(process: &mut Process, delta: bool) -> SnapshotPack {
    if delta {
        process.heap_mut().mark_clean();
        let ptr = process.heap_mut().alloc_array(4, Word::Int(9)).unwrap();
        process.heap_mut().store(ptr, 0, Word::Int(1)).unwrap();
    }
    let base = delta.then(|| ("base-ck".to_owned(), 0xFEED_u64));
    process
        .pack_snapshot(
            0,
            Word::Fun(0),
            &[],
            base.as_ref().map(|(b, fp)| (b.as_str(), *fp)),
        )
        .expect("pack")
}

fn sample_process() -> Process {
    let program = mojave_lang::compile_source("int main() { return 1; }").expect("compiles");
    let mut process = Process::new(program, ProcessConfig::default()).expect("verifies");
    for i in 0..32 {
        process.heap_mut().alloc_array(16, Word::Int(i)).unwrap();
    }
    process
}

#[test]
fn block_backpressure_preserves_every_checkpoint() {
    let store = CheckpointStore::new();
    let sink: Box<dyn MigrationSink + Send> = Box::new(SlowSink {
        inner: InMemorySink::with_store(store.clone()),
        delay: Duration::from_millis(5),
    });
    let pipeline = CheckpointPipeline::new(
        Arc::new(Mutex::new(sink)),
        PipelineConfig {
            queue_capacity: 1,
            backpressure: BackpressurePolicy::Block,
            drain_after_submit: false,
        },
    );
    let recorder = mojave_obs::Recorder::new(0, mojave_obs::Level::Trace);
    pipeline.set_recorder(recorder.clone());
    let mut process = sample_process();
    for i in 0..8 {
        let pack = sample_pack(&mut process, false);
        pipeline.submit(MigrateProtocol::Checkpoint, &format!("ck-{i}"), pack);
    }
    pipeline.drain();
    let stats = pipeline.stats();
    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.coalesced, 0);
    assert_eq!(stats.queue_depth, 0);
    // The high-water mark survives the drain: the capacity-1 queue was
    // full at least once while the slow sink held the worker.
    assert!(
        stats.queue_depth_max >= 1,
        "queue_depth_max = {}",
        stats.queue_depth_max
    );
    // Every submission also left a QueueDepth sample in the recorder,
    // carrying the observed depth and the configured capacity.
    let samples: Vec<_> = recorder
        .events()
        .into_iter()
        .filter(|e| e.kind == mojave_obs::EventKind::QueueDepth)
        .collect();
    assert_eq!(samples.len(), 8);
    assert!(samples.iter().all(|e| e.b == 1), "capacity rides in b");
    assert!(samples.iter().any(|e| e.a >= 1));
    assert_eq!(store.len(), 8, "Block never drops a checkpoint");
    // The blocked submissions are visible as mutator pause.
    assert!(stats.pause_ns > 0);
    assert!(stats.encode_ns > 0);
    assert!(stats.bytes_raw >= stats.bytes_stored);
}

#[test]
fn coalesce_latest_drops_only_superseded_deltas() {
    let store = CheckpointStore::new();
    let sink: Box<dyn MigrationSink + Send> = Box::new(SlowSink {
        inner: InMemorySink::with_store(store.clone()),
        delay: Duration::from_millis(20),
    });
    let pipeline = CheckpointPipeline::new(
        Arc::new(Mutex::new(sink)),
        PipelineConfig {
            queue_capacity: 1,
            backpressure: BackpressurePolicy::CoalesceLatest,
            drain_after_submit: false,
        },
    );
    let mut process = sample_process();
    // One full (never coalesced away), then a burst of deltas that the
    // slow sink forces to pile up behind it.
    pipeline.submit(
        MigrateProtocol::Checkpoint,
        "full-0",
        sample_pack(&mut process, false),
    );
    let mut outcomes = Vec::new();
    for i in 0..6 {
        let pack = sample_pack(&mut process, true);
        outcomes.push(pipeline.submit(MigrateProtocol::Checkpoint, &format!("delta-{i}"), pack));
    }
    pipeline.drain();
    let stats = pipeline.stats();
    assert_eq!(stats.submitted, 7);
    assert!(stats.coalesced > 0, "slow sink must force coalescing");
    assert_eq!(stats.completed + stats.coalesced, 7);
    // Coalescing replaces the queued delta in place, so the high-water
    // mark shows the queue filled but never exceeded its capacity.
    assert_eq!(stats.queue_depth_max, 1);
    // The full survived; the newest delta survived; coalesced deltas were
    // marked `Superseded` in their outcome slots without ever hitting the
    // store — distinct from `Failed`, so waiters never mistake healthy
    // backpressure for a sink error (which would force full-image
    // fallbacks).
    assert!(store.contains("full-0"));
    assert!(store.contains("delta-5"), "newest delta always lands");
    let dropped = outcomes
        .iter()
        .filter(|slot| matches!(slot.get(), Some(DeliveryOutcome::Superseded)))
        .count();
    assert_eq!(dropped as u64, stats.coalesced);
    assert!(
        !outcomes
            .iter()
            .any(|slot| matches!(slot.get(), Some(DeliveryOutcome::Failed(_)))),
        "coalescing must never surface as a delivery failure"
    );
    assert_eq!(stats.failed, 0);
}

#[test]
fn drain_barrier_reports_the_real_outcome() {
    let mut failing = AsyncSink::new(
        Box::new(FailingSink),
        PipelineConfig {
            drain_after_submit: true,
            ..PipelineConfig::default()
        },
    );
    let mut process = sample_process();
    let pack = sample_pack(&mut process, false);
    let outcome = failing.deliver_deferred(MigrateProtocol::Checkpoint, "ck", pack);
    assert!(matches!(outcome, DeliveryOutcome::Failed(_)));
    assert_eq!(failing.stats().failed, 1);

    // Without the barrier the same failure is reported optimistically and
    // surfaces in the stats instead.
    let mut optimistic = AsyncSink::new(Box::new(FailingSink), PipelineConfig::default());
    let pack = sample_pack(&mut process, false);
    let outcome = optimistic.deliver_deferred(MigrateProtocol::Checkpoint, "ck", pack);
    assert_eq!(outcome, DeliveryOutcome::Stored);
    optimistic.drain();
    assert_eq!(optimistic.stats().failed, 1);
}

#[test]
fn synchronous_deliveries_drain_pending_checkpoints_first() {
    let store = CheckpointStore::new();
    let mut sink = AsyncSink::new(
        Box::new(SlowSink {
            inner: InMemorySink::with_store(store.clone()),
            delay: Duration::from_millis(10),
        }),
        PipelineConfig::default(),
    );
    let mut process = sample_process();
    let pack = sample_pack(&mut process, false);
    sink.deliver_deferred(MigrateProtocol::Checkpoint, "ck-before", pack);

    // A suspend image must not overtake the queued checkpoint.
    let image = process.pack(9, Word::Fun(0), &[]).expect("pack");
    let outcome = sink.deliver(MigrateProtocol::Suspend, "final", &image);
    assert_eq!(outcome, DeliveryOutcome::Stored);
    assert!(store.contains("ck-before"));
    assert!(store.contains("final"));
}

#[test]
fn failed_async_full_never_poisons_the_delta_chain() {
    // A sink that drops the *first* full checkpoint and stores the rest:
    // the process must keep emitting resolvable (full) images — never a
    // delta against the base that silently failed to store.
    struct DropFirst {
        inner: InMemorySink,
        dropped: bool,
    }
    impl MigrationSink for DropFirst {
        fn deliver(
            &mut self,
            protocol: MigrateProtocol,
            target: &str,
            image: &MigrationImage,
        ) -> DeliveryOutcome {
            if !self.dropped {
                self.dropped = true;
                return DeliveryOutcome::Failed("first full dropped".into());
            }
            self.inner.deliver(protocol, target, image)
        }
        fn has_base(&self, base: &str, fp: u64) -> bool {
            self.inner.has_base(base, fp)
        }
        fn accepted_codecs(&self) -> CodecSet {
            self.inner.accepted_codecs()
        }
    }

    let store = CheckpointStore::new();
    let program = mojave_lang::compile_source(&checkpointing_source(5)).expect("compiles");
    let mut process = Process::new(
        program,
        ProcessConfig {
            delta_checkpoints: true,
            async_checkpoints: true,
            ..ProcessConfig::default()
        },
    )
    .expect("verifies")
    .with_sink(Box::new(AsyncSink::new(
        Box::new(DropFirst {
            inner: InMemorySink::with_store(store.clone()),
            dropped: false,
        }),
        PipelineConfig::default(),
    )));
    process.run().expect("runs");
    // ck-0 was dropped by the sink; everything that landed must resolve.
    assert!(!store.contains("ck-0"));
    for name in store.names() {
        store
            .load(&name)
            .unwrap_or_else(|e| panic!("checkpoint {name} must resolve after a dropped base: {e}"));
    }
    assert!(store.len() >= 3);
}
