//! Decode-side error type.

use mojave_codec::CodecError;
use std::fmt;

/// Errors produced while decoding a wire image.
///
/// Encoding never fails (the writer owns a growable buffer); every failure
/// mode lives on the decode side, where the input may be truncated,
/// corrupted, produced by a different runtime version, or adversarial (the
/// paper's migration server accepts images from untrusted peers and must be
/// able to reject them safely).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes while decoding a value.
    UnexpectedEof {
        /// What was being decoded when the input ended.
        context: &'static str,
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes were actually available.
        available: usize,
    },
    /// A discriminant/tag byte had an unknown value.
    BadTag {
        /// The structure whose tag was invalid.
        context: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A length prefix exceeded the sanity limit for its context.
    LengthOverflow {
        /// The structure whose length was implausible.
        context: &'static str,
        /// The decoded length.
        len: u64,
    },
    /// A varint used more bytes than a 64-bit value can require.
    VarintTooLong,
    /// A string section did not contain valid UTF-8.
    InvalidUtf8,
    /// The image magic number did not match [`crate::MAGIC`].
    BadMagic {
        /// The magic value found in the image.
        found: u32,
    },
    /// The image was produced by an incompatible format version.
    VersionMismatch {
        /// Version found in the image.
        found: u32,
        /// Version this runtime expects.
        expected: u32,
    },
    /// A section tag did not match what the decoder expected next.
    SectionMismatch {
        /// The tag the decoder expected.
        expected: &'static str,
        /// The raw tag value found.
        found: u8,
    },
    /// The buffer contained extra bytes after a complete top-level value.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A compressed slab frame failed to decompress (truncated payload,
    /// bad LZ copy offset, size mismatch against the declared raw length,
    /// …).  Wraps the precise [`CodecError`] from `mojave-codec`.
    Codec(CodecError),
    /// A semantic constraint was violated (e.g. an index out of range for
    /// the table it refers to).  Carries a human-readable description.
    Invalid(String),
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> WireError {
        WireError::Codec(e)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof {
                context,
                needed,
                available,
            } => write!(
                f,
                "unexpected end of image while decoding {context}: needed {needed} bytes, {available} available"
            ),
            WireError::BadTag { context, tag } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            WireError::LengthOverflow { context, len } => {
                write!(f, "implausible length {len} while decoding {context}")
            }
            WireError::VarintTooLong => write!(f, "varint longer than 10 bytes"),
            WireError::InvalidUtf8 => write!(f, "string section is not valid UTF-8"),
            WireError::BadMagic { found } => {
                write!(f, "bad image magic {found:#010x}")
            }
            WireError::VersionMismatch { found, expected } => write!(
                f,
                "image format version {found} is not supported (expected {expected})"
            ),
            WireError::SectionMismatch { expected, found } => write!(
                f,
                "expected section {expected}, found tag byte {found:#04x}"
            ),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after top-level value")
            }
            WireError::Codec(e) => write!(f, "compressed frame rejected: {e}"),
            WireError::Invalid(msg) => write!(f, "invalid image: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}
