//! Stream framing for the socket transport.
//!
//! The wire crate's core job is encoding *images* — self-contained byte
//! buffers.  Moving those buffers over a byte stream (a `TcpStream`)
//! needs one more layer: message boundaries.  This module is that layer,
//! deliberately minimal:
//!
//! ```text
//! frame := [kind: u8] [len: u32 LE] [payload: len bytes]
//! ```
//!
//! plus the two handshake payloads ([`Hello`], [`Welcome`]) that open
//! every connection.  Everything above frames — RPC payload schemas, the
//! cluster protocol state machine — lives in `mojave-cluster`; everything
//! below — the canonical encoding of the payloads themselves — is the
//! ordinary [`WireWriter`]/[`WireReader`] machinery.
//!
//! Like the rest of the format, frames arrive from untrusted peers: every
//! decode path returns a precise [`FrameError`] and never panics, never
//! allocates more than a bounded amount before the input has paid for it
//! (payloads are read in [`READ_CHUNK`]-sized steps, so a hostile header
//! declaring [`MAX_FRAME_LEN`] bytes costs only as much memory as the
//! peer actually transmits).

use crate::{WireError, WireReader, WireWriter, FORMAT_VERSION, MAGIC};
use std::fmt;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the *transport* protocol (framing + handshake + RPC
/// numbering).  Independent of the image [`FORMAT_VERSION`]: a transport
/// bump changes how bytes move, not what they decode to.
///
/// v2 added the observability scrape messages ([`FrameKind::ObsPush`]
/// through [`FrameKind::ObsReply`]).
pub const TRANSPORT_VERSION: u32 = 2;

/// Upper bound on a single frame's payload (1 GiB).  A frame carries at
/// most one wire image plus small metadata; anything larger is corruption
/// or an attack, and rejecting it at the header keeps a hostile peer from
/// requesting unbounded allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Incremental read size for frame payloads: memory is committed as the
/// bytes actually arrive, never all at once on the header's say-so.
const READ_CHUNK: usize = 64 * 1024;

/// Every message kind in transport v1, in protocol-number order.
///
/// The split mirrors the trait surface it transports: `Send`/`Recv`/
/// `Tick`/`Fail` carry `ClusterExternals` calls, `Deliver`/`HasBase`
/// carry `MigrationSink` calls, and the rest is connection lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: open a connection (magic, versions, node id,
    /// codec bits, architecture tag).
    Hello = 1,
    /// Server → client: handshake accepted; cluster shape and the
    /// negotiated codec set.
    Welcome = 2,
    /// Either direction: a fatal protocol error, described in UTF-8,
    /// sent as a courtesy before closing the connection.
    Error = 3,
    /// Server → client: the program to run (worker source + options).
    Job = 4,
    /// Client → server: `msg_send` RPC.
    Send = 5,
    /// Server → client: `msg_send` acknowledged.
    SendAck = 6,
    /// Client → server: `msg_recv` RPC (blocks server-side).
    Recv = 7,
    /// Server → client: `msg_recv` outcome.
    RecvReply = 8,
    /// Client → server: per-external-call failure/clock tick probe.
    Tick = 9,
    /// Server → client: failure flag + virtual clock.
    TickReply = 10,
    /// Client → server: `inject_failure` RPC.
    Fail = 11,
    /// Server → client: failure injected.
    FailAck = 12,
    /// Client → server: a wire image delivery (`MigrationSink::deliver`).
    Deliver = 13,
    /// Server → client: delivery outcome.
    DeliverAck = 14,
    /// Client → server: `MigrationSink::has_base` probe.
    HasBase = 15,
    /// Server → client: `has_base` answer.
    HasBaseReply = 16,
    /// Client → server: final run statistics for this node.
    Stats = 17,
    /// Server → client: statistics recorded.
    StatsAck = 18,
    /// Client → server: clean shutdown; the connection closes after.
    Bye = 19,
    /// Client → server: a node's observability report (metrics snapshot
    /// plus flight-recorder events) pushed at end of run.
    ObsPush = 20,
    /// Server → client: observability report recorded.
    ObsAck = 21,
    /// Client → server: scrape request — send back the observability
    /// reports collected so far.
    ObsQuery = 22,
    /// Server → client: the aggregated observability reports.
    ObsReply = 23,
}

impl FrameKind {
    /// Decode a protocol-number byte.
    pub fn from_u8(byte: u8) -> Option<FrameKind> {
        use FrameKind::*;
        const ALL: [FrameKind; 23] = [
            Hello,
            Welcome,
            Error,
            Job,
            Send,
            SendAck,
            Recv,
            RecvReply,
            Tick,
            TickReply,
            Fail,
            FailAck,
            Deliver,
            DeliverAck,
            HasBase,
            HasBaseReply,
            Stats,
            StatsAck,
            Bye,
            ObsPush,
            ObsAck,
            ObsQuery,
            ObsReply,
        ];
        ALL.into_iter().find(|k| *k as u8 == byte)
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Errors produced while reading or writing frames on a stream.
///
/// Unlike [`WireError`] this has to absorb I/O failures, so it is not
/// `PartialEq`; match on variants instead.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The stream ended cleanly *between* frames — an orderly close.
    Closed,
    /// The stream ended in the middle of a frame.
    Truncated {
        /// Bytes of the frame that did arrive.
        got: usize,
        /// Bytes the header promised.
        expected: usize,
    },
    /// The kind byte named no known message.
    UnknownKind(u8),
    /// The header declared a payload larger than [`MAX_FRAME_LEN`].
    Oversized {
        /// The message kind carrying the implausible length.
        kind: FrameKind,
        /// The declared payload length.
        len: u32,
    },
    /// A frame payload failed to decode.
    Wire(WireError),
    /// The peer sent a well-formed frame that violates the protocol
    /// (wrong kind for the state, bad handshake values, an explicit
    /// [`FrameKind::Error`] message).
    Protocol(String),
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> FrameError {
        FrameError::Wire(e)
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport i/o error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { got, expected } => {
                write!(
                    f,
                    "connection closed mid-frame: got {got} of {expected} bytes"
                )
            }
            FrameError::UnknownKind(byte) => write!(f, "unknown frame kind {byte:#04x}"),
            FrameError::Oversized { kind, len } => {
                write!(f, "{kind} frame declares implausible length {len}")
            }
            FrameError::Wire(e) => write!(f, "frame payload rejected: {e}"),
            FrameError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Write one frame: kind byte, little-endian length, payload.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|len| *len <= MAX_FRAME_LEN)
        .ok_or(FrameError::Oversized {
            kind,
            len: u32::MAX,
        })?;
    let mut header = [0u8; 5];
    header[0] = kind as u8;
    header[1..5].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame.  Blocks until a full frame arrives (or the stream's
/// read timeout fires, surfacing as [`FrameError::Io`]).
///
/// A clean EOF before any header byte is [`FrameError::Closed`]; an EOF
/// anywhere after is [`FrameError::Truncated`] — the two cases a
/// connection handler must treat differently (orderly close vs. a peer
/// dying mid-message).
pub fn read_frame(r: &mut impl Read) -> Result<(FrameKind, Vec<u8>), FrameError> {
    let mut header = [0u8; 5];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated {
                        got: filled,
                        expected: header.len(),
                    }
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let kind = FrameKind::from_u8(header[0]).ok_or(FrameError::UnknownKind(header[0]))?;
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { kind, len });
    }
    let expected = len as usize;
    let mut payload = Vec::new();
    while payload.len() < expected {
        let want = (expected - payload.len()).min(READ_CHUNK);
        let start = payload.len();
        payload.resize(start + want, 0);
        match r.read(&mut payload[start..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    got: start + header.len(),
                    expected: expected + header.len(),
                });
            }
            Ok(n) => payload.truncate(start + n),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => payload.truncate(start),
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok((kind, payload))
}

/// Per-connection (or per-node) transport traffic accounting.
///
/// All counters are atomics so one `Arc<LinkStats>` can be shared
/// between a connection handler and whoever reports the totals; byte
/// counts include the 5-byte frame header, so they match what actually
/// crossed the socket.
#[derive(Debug, Default)]
pub struct LinkStats {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl LinkStats {
    /// Fresh zeroed counters.
    pub fn new() -> LinkStats {
        LinkStats::default()
    }

    /// Account one outbound frame of `payload_len` bytes.
    pub fn note_sent(&self, payload_len: usize) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(5 + payload_len as u64, Ordering::Relaxed);
    }

    /// Account one inbound frame of `payload_len` bytes.
    pub fn note_received(&self, payload_len: usize) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(5 + payload_len as u64, Ordering::Relaxed);
    }

    /// Frames written to the peer.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.load(Ordering::Relaxed)
    }

    /// Frames read from the peer.
    pub fn frames_received(&self) -> u64 {
        self.frames_received.load(Ordering::Relaxed)
    }

    /// Bytes written to the peer (headers included).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Bytes read from the peer (headers included).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }
}

/// [`write_frame`] plus accounting into `stats`.
pub fn write_frame_counted(
    w: &mut impl Write,
    kind: FrameKind,
    payload: &[u8],
    stats: &LinkStats,
) -> Result<(), FrameError> {
    write_frame(w, kind, payload)?;
    stats.note_sent(payload.len());
    Ok(())
}

/// [`read_frame`] plus accounting into `stats`.
pub fn read_frame_counted(
    r: &mut impl Read,
    stats: &LinkStats,
) -> Result<(FrameKind, Vec<u8>), FrameError> {
    let (kind, payload) = read_frame(r)?;
    stats.note_received(payload.len());
    Ok((kind, payload))
}

/// The client's opening message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Transport protocol version ([`TRANSPORT_VERSION`]).
    pub transport_version: u32,
    /// Image format version the client encodes ([`FORMAT_VERSION`]).
    pub format_version: u32,
    /// Which cluster node this connection embodies.
    pub node: u32,
    /// Codec membership bits the client can *encode*
    /// (`CodecSet::bits()`).
    pub codec_bits: u8,
    /// Architecture tag the client's machine runs
    /// (e.g. `"ia32-sim"`).
    pub arch: String,
}

impl Hello {
    /// Encode as a `Hello` frame payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.write_u32(MAGIC);
        w.write_u32(self.transport_version);
        w.write_u32(self.format_version);
        w.write_u32(self.node);
        w.write_u8(self.codec_bits);
        w.write_str(&self.arch);
        w.into_bytes()
    }

    /// Decode a `Hello` frame payload, validating the magic.
    pub fn from_payload(payload: &[u8]) -> Result<Hello, FrameError> {
        let mut r = WireReader::new(payload);
        let magic = r.read_u32()?;
        if magic != MAGIC {
            return Err(FrameError::Wire(WireError::BadMagic { found: magic }));
        }
        let hello = Hello {
            transport_version: r.read_u32()?,
            format_version: r.read_u32()?,
            node: r.read_u32()?,
            codec_bits: r.read_u8()?,
            arch: r.read_str()?.to_owned(),
        };
        if !r.is_empty() {
            return Err(FrameError::Wire(WireError::TrailingBytes {
                remaining: r.remaining(),
            }));
        }
        Ok(hello)
    }

    /// A hello for the current runtime's versions.
    pub fn current(node: u32, codec_bits: u8, arch: impl Into<String>) -> Hello {
        Hello {
            transport_version: TRANSPORT_VERSION,
            format_version: FORMAT_VERSION,
            node,
            codec_bits,
            arch: arch.into(),
        }
    }
}

/// The server's handshake acceptance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Welcome {
    /// Transport protocol version the server speaks.
    pub transport_version: u32,
    /// Image format version the server decodes.
    pub format_version: u32,
    /// Total nodes in the cluster.
    pub num_nodes: u32,
    /// Whether the cluster runs in deterministic simulation mode.
    pub deterministic: bool,
    /// Per-node RNG seed for the connected node.
    pub node_seed: u64,
    /// Architecture tag the node must emulate.
    pub arch: String,
    /// Negotiated codec bits: the intersection of the client's
    /// advertised set and the server's accepted set.
    pub codec_bits: u8,
}

impl Welcome {
    /// Encode as a `Welcome` frame payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.write_u32(MAGIC);
        w.write_u32(self.transport_version);
        w.write_u32(self.format_version);
        w.write_u32(self.num_nodes);
        w.write_bool(self.deterministic);
        w.write_u64(self.node_seed);
        w.write_str(&self.arch);
        w.write_u8(self.codec_bits);
        w.into_bytes()
    }

    /// Decode a `Welcome` frame payload, validating the magic.
    pub fn from_payload(payload: &[u8]) -> Result<Welcome, FrameError> {
        let mut r = WireReader::new(payload);
        let magic = r.read_u32()?;
        if magic != MAGIC {
            return Err(FrameError::Wire(WireError::BadMagic { found: magic }));
        }
        let welcome = Welcome {
            transport_version: r.read_u32()?,
            format_version: r.read_u32()?,
            num_nodes: r.read_u32()?,
            deterministic: r.read_bool()?,
            node_seed: r.read_u64()?,
            arch: r.read_str()?.to_owned(),
            codec_bits: r.read_u8()?,
        };
        if !r.is_empty() {
            return Err(FrameError::Wire(WireError::TrailingBytes {
                remaining: r.remaining(),
            }));
        }
        Ok(welcome)
    }
}

/// Send an [`FrameKind::Error`] frame (best-effort: failures to deliver
/// the courtesy message are swallowed — the connection is dying anyway).
pub fn send_error(w: &mut impl Write, message: &str) {
    let mut payload = WireWriter::new();
    payload.write_str(message);
    let _ = write_frame(w, FrameKind::Error, &payload.into_bytes());
}

/// Decode an [`FrameKind::Error`] frame's message.
pub fn decode_error(payload: &[u8]) -> String {
    let mut r = WireReader::new(payload);
    r.read_str()
        .map(str::to_owned)
        .unwrap_or_else(|_| "<malformed error frame>".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Deliver, b"payload bytes").unwrap();
        write_frame(&mut buf, FrameKind::Bye, b"").unwrap();
        let mut cursor = &buf[..];
        let (kind, payload) = read_frame(&mut cursor).unwrap();
        assert_eq!(kind, FrameKind::Deliver);
        assert_eq!(payload, b"payload bytes");
        let (kind, payload) = read_frame(&mut cursor).unwrap();
        assert_eq!(kind, FrameKind::Bye);
        assert!(payload.is_empty());
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn truncation_is_distinguished_from_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Send, &[7u8; 100]).unwrap();
        // Cut inside the header.
        let mut cursor = &buf[..3];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Truncated { got: 3, .. })
        ));
        // Cut inside the payload.
        let mut cursor = &buf[..40];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn hostile_headers_rejected_without_allocation() {
        // Unknown kind byte.
        let bytes = [0xEEu8, 1, 0, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(FrameError::UnknownKind(0xEE))
        ));
        // A length past MAX_FRAME_LEN is rejected at the header; the
        // reader must not try to allocate it.
        let mut bytes = vec![FrameKind::Deliver as u8];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(FrameError::Oversized {
                kind: FrameKind::Deliver,
                len: u32::MAX,
            })
        ));
    }

    #[test]
    fn handshake_payload_roundtrip() {
        let hello = Hello::current(3, 0b1111, "ia32-sim");
        let back = Hello::from_payload(&hello.to_payload()).unwrap();
        assert_eq!(back, hello);

        let welcome = Welcome {
            transport_version: TRANSPORT_VERSION,
            format_version: FORMAT_VERSION,
            num_nodes: 4,
            deterministic: true,
            node_seed: 0xDEAD_BEEF_F00D,
            arch: "risc-sim".to_owned(),
            codec_bits: 0b0101,
        };
        let back = Welcome::from_payload(&welcome.to_payload()).unwrap();
        assert_eq!(back, welcome);
    }

    #[test]
    fn handshake_rejects_bad_magic_and_trailing_bytes() {
        let mut payload = Hello::current(0, 0xF, "ia32-sim").to_payload();
        payload[0] ^= 0xFF;
        assert!(matches!(
            Hello::from_payload(&payload),
            Err(FrameError::Wire(WireError::BadMagic { .. }))
        ));

        let mut payload = Hello::current(0, 0xF, "ia32-sim").to_payload();
        payload.push(0);
        assert!(matches!(
            Hello::from_payload(&payload),
            Err(FrameError::Wire(WireError::TrailingBytes { remaining: 1 }))
        ));
    }

    #[test]
    fn obs_frame_kinds_roundtrip() {
        for kind in [
            FrameKind::ObsPush,
            FrameKind::ObsAck,
            FrameKind::ObsQuery,
            FrameKind::ObsReply,
        ] {
            assert_eq!(FrameKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(FrameKind::from_u8(24), None);
    }

    #[test]
    fn counted_io_accounts_frames_and_bytes() {
        let stats = LinkStats::new();
        let mut buf = Vec::new();
        write_frame_counted(&mut buf, FrameKind::ObsPush, &[1, 2, 3], &stats).unwrap();
        write_frame_counted(&mut buf, FrameKind::Bye, &[], &stats).unwrap();
        assert_eq!(stats.frames_sent(), 2);
        assert_eq!(stats.bytes_sent(), (5 + 3) + 5);
        assert_eq!(stats.bytes_sent(), buf.len() as u64);

        let peer = LinkStats::new();
        let mut cursor = &buf[..];
        read_frame_counted(&mut cursor, &peer).unwrap();
        read_frame_counted(&mut cursor, &peer).unwrap();
        assert_eq!(peer.frames_received(), 2);
        assert_eq!(peer.bytes_received(), stats.bytes_sent());
    }

    #[test]
    fn error_frames_carry_their_message() {
        let mut buf = Vec::new();
        send_error(&mut buf, "codec negotiation failed");
        let (kind, payload) = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(kind, FrameKind::Error);
        assert_eq!(decode_error(&payload), "codec negotiation failed");
    }
}
