//! # mojave-wire
//!
//! Architecture-independent canonical binary encoding used by the Mojave
//! runtime for migration images, checkpoint files and speculation snapshots.
//!
//! The paper (§4.2.2) stresses that all heap data is kept in a *standard,
//! architecture-independent* representation with fixed byte ordering and
//! alignment rules so that whole-process migration between heterogeneous
//! machines requires essentially no translation.  This crate is that
//! representation: a small, dependency-free, deterministic wire format.
//!
//! Design rules:
//!
//! * every multi-byte integer is encoded **little-endian**;
//! * variable-length unsigned integers use LEB128 (`write_uvarint`);
//! * sequences are length-prefixed with a uvarint;
//! * floating point values are encoded as their IEEE-754 bit pattern;
//! * strings are UTF-8 bytes, length-prefixed;
//! * every composite structure written by the runtime starts with a
//!   [`SectionTag`] so that decoders can detect corrupted or truncated
//!   images early and report a precise [`WireError`].
//!
//! The format is intentionally *not* self-describing beyond section tags:
//! the reader must know the schema.  The image header carries a
//! [`FORMAT_VERSION`]; decoders accept any version down to
//! [`MIN_SUPPORTED_VERSION`] and pick the matching layout, so checkpoints
//! written by older runtimes stay loadable while new images use the
//! compressed v5 layout: framed [`SectionReader`]/[`SectionWriter`]
//! sections whose heap payloads carry **codec-tagged compressed slab
//! frames** (`write_word_frame`/`read_word_frame_into`, backed by the
//! `mojave-codec` subsystem — see the "Compression" chapter of
//! `docs/WIRE_FORMAT.md`).
//!
//! ```
//! use mojave_wire::{WireWriter, WireReader};
//!
//! let mut w = WireWriter::new();
//! w.write_u32(0xDEAD_BEEF);
//! w.write_str("mojave");
//! w.write_f64(2.5);
//! let bytes = w.into_bytes();
//!
//! let mut r = WireReader::new(&bytes);
//! assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
//! assert_eq!(r.read_str().unwrap(), "mojave");
//! assert_eq!(r.read_f64().unwrap(), 2.5);
//! assert!(r.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod frame;
mod reader;
mod tags;
mod writer;

pub use error::WireError;
pub use frame::{
    decode_error, read_frame, read_frame_counted, send_error, write_frame, write_frame_counted,
    FrameError, FrameKind, Hello, LinkStats, Welcome, MAX_FRAME_LEN, TRANSPORT_VERSION,
};
pub use reader::{FrameStats, ImageHeader, SectionReader, WireReader, MAX_REASONABLE_LEN};
pub use tags::{SectionTag, BATCHED_VERSION, FORMAT_VERSION, MAGIC, MIN_SUPPORTED_VERSION};
pub use writer::{SectionWriter, WireWriter};

// The slab-compression subsystem: re-exported so every consumer of the
// wire format (heap, core, cluster, grid, benches) names codecs through
// one crate.
pub use mojave_codec::{
    choose, choose_bytes, choose_words, compress_bytes, compress_lz_bytes, compress_words,
    decompress_bytes, decompress_lz_bytes, decompress_words, CodecError, CodecId, CodecSet,
    SlabCodec, VarintStream, CHOICE_SAMPLE_WORDS,
};

/// 64-bit FNV-1a fingerprint of a byte payload.
///
/// Not cryptographic — it exists so a delta image can name its base by
/// *content* as well as by checkpoint name, catching the case where the
/// base name was later overwritten with a different image (resolving the
/// delta against it would silently produce a heap state that never
/// existed).
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Convenience trait for types that can be encoded onto a [`WireWriter`]
/// and decoded from a [`WireReader`].
///
/// All FIR and heap structures that participate in migration implement this.
pub trait WireCodec: Sized {
    /// Append the canonical encoding of `self` to `w`.
    fn encode(&self, w: &mut WireWriter);
    /// Decode a value previously produced by [`WireCodec::encode`].
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Encode a value into a fresh byte buffer.
pub fn to_bytes<T: WireCodec>(value: &T) -> Vec<u8> {
    let mut w = WireWriter::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decode a value from a byte buffer, requiring that the whole buffer is
/// consumed (trailing garbage is an error — truncated/concatenated images
/// must not be silently accepted).
pub fn from_bytes<T: WireCodec>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(bytes);
    let v = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(v)
}

impl WireCodec for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.write_uvarint(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.read_uvarint()
    }
}

impl WireCodec for i64 {
    fn encode(&self, w: &mut WireWriter) {
        w.write_ivarint(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.read_ivarint()
    }
}

impl WireCodec for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.write_f64(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.read_f64()
    }
}

impl WireCodec for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.write_bool(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.read_bool()
    }
}

impl WireCodec for String {
    fn encode(&self, w: &mut WireWriter) {
        w.write_str(self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(r.read_str()?.to_owned())
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.write_uvarint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.read_len()?;
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.write_u8(0),
            Some(v) => {
                w.write_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                context: "Option",
                tag: tag as u64,
            }),
        }
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = WireWriter::new();
        w.write_u8(7);
        w.write_u16(65535);
        w.write_u32(123_456);
        w.write_u64(u64::MAX);
        w.write_i64(-42);
        w.write_f64(-0.125);
        w.write_bool(true);
        w.write_bool(false);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u16().unwrap(), 65535);
        assert_eq!(r.read_u32().unwrap(), 123_456);
        assert_eq!(r.read_u64().unwrap(), u64::MAX);
        assert_eq!(r.read_i64().unwrap(), -42);
        assert_eq!(r.read_f64().unwrap(), -0.125);
        assert!(r.read_bool().unwrap());
        assert!(!r.read_bool().unwrap());
        assert!(r.is_empty());
    }

    #[test]
    fn roundtrip_vec_and_option() {
        let v: Vec<u64> = vec![0, 1, 127, 128, 300, u64::MAX];
        let bytes = to_bytes(&v);
        let back: Vec<u64> = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);

        let o: Option<String> = Some("checkpoint".to_owned());
        let bytes = to_bytes(&o);
        let back: Option<String> = from_bytes(&bytes).unwrap();
        assert_eq!(o, back);

        let n: Option<String> = None;
        let bytes = to_bytes(&n);
        let back: Option<String> = from_bytes(&bytes).unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = WireWriter::new();
        w.write_u64(9);
        w.write_u8(0xFF);
        let bytes = w.into_bytes();
        let err = from_bytes::<u64>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::TrailingBytes { .. }));
    }

    #[test]
    fn truncated_input_rejected() {
        let mut w = WireWriter::new();
        w.write_str("this string is longer than the truncation point");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..5]);
        assert!(r.read_str().is_err());
    }

    #[test]
    fn nan_bits_preserved() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut w = WireWriter::new();
        w.write_f64(weird);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_f64().unwrap().to_bits(), weird.to_bits());
    }
}
