//! The decode half of the wire format.

use crate::error::WireError;
use crate::tags::{SectionTag, FORMAT_VERSION, MAGIC, MIN_SUPPORTED_VERSION};
use mojave_codec::CodecId;
use std::ops::{Deref, DerefMut};

/// Sanity bound on any single length prefix.  Migration images for the
/// workloads in the paper are a few megabytes; a length prefix claiming more
/// than this is corruption or an adversarial image and is rejected before we
/// try to allocate for it.
pub const MAX_REASONABLE_LEN: u64 = 1 << 32;

/// The decoded image header: format version and source architecture.
///
/// Returned by [`WireReader::read_header`], which accepts every version in
/// the supported range; callers branch on `version` to pick the right
/// layout (v1 unframed vs. v2 framed sections).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageHeader {
    /// Format version found in the image (between
    /// [`MIN_SUPPORTED_VERSION`] and [`FORMAT_VERSION`] inclusive).
    pub version: u32,
    /// The architecture tag the packing machine recorded.
    pub source_arch: String,
}

/// Checked narrowing of a decoded 64-bit length to `usize`.
///
/// On 64-bit hosts this never fails, but on 32-bit targets a bare
/// `as usize` cast would silently truncate any value above `u32::MAX` —
/// turning an adversarial 2³²+k length prefix into an innocuous-looking
/// small `k` that passes every later bounds check.  Every length that
/// crosses from wire `u64` to host `usize` goes through here.
fn checked_usize(value: u64, context: &'static str) -> Result<usize, WireError> {
    usize::try_from(value).map_err(|_| WireError::LengthOverflow {
        context,
        len: value,
    })
}

/// Cursor-style decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Create a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                context,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a single byte.
    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u16`.
    pub fn read_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn read_i64(&mut self) -> Result<i64, WireError> {
        Ok(self.read_u64()? as i64)
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn read_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Read a boolean; any byte other than 0 or 1 is an error.
    pub fn read_bool(&mut self) -> Result<bool, WireError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag {
                context: "bool",
                tag: tag as u64,
            }),
        }
    }

    /// Read an unsigned LEB128 varint.
    pub fn read_uvarint(&mut self) -> Result<u64, WireError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift >= 64 {
                return Err(WireError::VarintTooLong);
            }
            result |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Read a zig-zag signed varint.
    pub fn read_ivarint(&mut self) -> Result<i64, WireError> {
        let zz = self.read_uvarint()?;
        Ok(((zz >> 1) as i64) ^ -((zz & 1) as i64))
    }

    /// Read a length prefix, applying the [`MAX_REASONABLE_LEN`] sanity bound
    /// and also bounding it by the number of bytes remaining (an element
    /// cannot occupy less than one byte, so a length greater than
    /// `remaining()` is always corrupt).
    pub fn read_len(&mut self) -> Result<usize, WireError> {
        let len = self.read_uvarint()?;
        if len > MAX_REASONABLE_LEN {
            return Err(WireError::LengthOverflow {
                context: "sequence",
                len,
            });
        }
        checked_usize(len, "sequence")
    }

    /// Read a length-prefixed byte slice.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.read_len()?;
        self.take(len, "bytes")
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<&'a str, WireError> {
        let bytes = self.read_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)
    }

    /// Read a uvarint-encoded `usize` (counts, capacities, jump targets).
    ///
    /// Bounded by [`MAX_REASONABLE_LEN`] like every other length-bearing
    /// value, and narrowed with a **checked** conversion: no in-tree
    /// encoder produces larger values, and on 32-bit targets an unchecked
    /// cast would silently truncate instead of erroring.
    pub fn read_usize(&mut self) -> Result<usize, WireError> {
        let value = self.read_uvarint()?;
        if value > MAX_REASONABLE_LEN {
            return Err(WireError::LengthOverflow {
                context: "usize value",
                len: value,
            });
        }
        checked_usize(value, "usize value")
    }

    /// Read and validate the standard image header written by
    /// [`crate::WireWriter::write_header`].
    ///
    /// Any version between [`MIN_SUPPORTED_VERSION`] and [`FORMAT_VERSION`]
    /// is accepted — decoders use [`ImageHeader::version`] to select the v1
    /// or v2 layout; anything outside the range is a
    /// [`WireError::VersionMismatch`].
    pub fn read_header(&mut self) -> Result<ImageHeader, WireError> {
        self.expect_section(SectionTag::Header)?;
        let magic = self.read_u32()?;
        if magic != MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
        let version = self.read_u32()?;
        if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(WireError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let source_arch = self.read_str()?.to_owned();
        Ok(ImageHeader {
            version,
            source_arch,
        })
    }

    /// Read a section tag and require it to be `expected`.
    pub fn expect_section(&mut self, expected: SectionTag) -> Result<(), WireError> {
        let byte = self.read_u8()?;
        if SectionTag::from_u8(byte) == Some(expected) {
            Ok(())
        } else {
            Err(WireError::SectionMismatch {
                expected: expected.name(),
                found: byte,
            })
        }
    }

    /// Read a word slab written by [`crate::WireWriter::write_words`],
    /// appending the decoded words to `out` and returning how many were
    /// read.
    ///
    /// The whole slab is validated with a **single** bounds check (one
    /// borrowed `&[u8]` view over `8 * len` bytes), so decoding is a tight
    /// LE load loop instead of a per-element EOF-checked read.
    pub fn read_words_into(&mut self, out: &mut Vec<u64>) -> Result<usize, WireError> {
        let len = self.read_len()?;
        let byte_len = len.checked_mul(8).ok_or(WireError::LengthOverflow {
            context: "word slab",
            len: len as u64,
        })?;
        let slab = self.take(byte_len, "word slab")?;
        out.reserve(len);
        for chunk in slab.chunks_exact(8) {
            let mut le = [0u8; 8];
            le.copy_from_slice(chunk);
            out.push(u64::from_le_bytes(le));
        }
        Ok(len)
    }

    /// Decode a compressed frame's `(declared length, codec id)` header,
    /// bounding the untrusted declared length **before** anything is
    /// allocated for it.
    fn read_frame_header(&mut self, context: &'static str) -> Result<(usize, CodecId), WireError> {
        let declared = self.read_uvarint()?;
        if declared > MAX_REASONABLE_LEN {
            return Err(WireError::LengthOverflow {
                context,
                len: declared,
            });
        }
        let byte = self.read_u8()?;
        let codec = CodecId::from_u8(byte).ok_or(WireError::BadTag {
            context: "codec id",
            tag: byte as u64,
        })?;
        Ok((checked_usize(declared, context)?, codec))
    }

    /// Read a compressed word-slab frame written by
    /// [`crate::WireWriter::write_word_frame`], appending the decoded words
    /// to `out` and returning how many were read.
    ///
    /// Untrusted-input discipline: the declared word count is bounded by
    /// [`MAX_REASONABLE_LEN`] before allocation, the compressed payload is
    /// sliced with one bounds check, and the codec layer enforces that the
    /// payload produces *exactly* the declared count — a frame claiming a
    /// gigantic slab over a few payload bytes fails with a precise error
    /// after allocating no more than the payload justifies.
    pub fn read_word_frame_into(&mut self, out: &mut Vec<u64>) -> Result<usize, WireError> {
        let (count, codec) = self.read_frame_header("word frame")?;
        if count as u64 > MAX_REASONABLE_LEN / 8 {
            return Err(WireError::LengthOverflow {
                context: "word frame",
                len: count as u64,
            });
        }
        let payload = self.read_bytes()?;
        mojave_codec::decompress_words(codec, payload, count, out)?;
        Ok(count)
    }

    /// Read a compressed byte-slab frame written by
    /// [`crate::WireWriter::write_byte_frame`], returning the decompressed
    /// bytes.  Same untrusted-input bounds as
    /// [`WireReader::read_word_frame_into`]; a word-slab codec id in a
    /// byte frame is a [`WireError::Codec`] error.
    pub fn read_byte_frame(&mut self) -> Result<Vec<u8>, WireError> {
        let (raw_len, codec) = self.read_frame_header("byte frame")?;
        let payload = self.read_bytes()?;
        let mut out = Vec::new();
        mojave_codec::decompress_bytes(codec, payload, raw_len, &mut out)?;
        Ok(out)
    }

    /// Advance past a word frame without decompressing it, returning its
    /// wire statistics (used by checkpoint-store size accounting).
    pub fn skip_word_frame(&mut self) -> Result<FrameStats, WireError> {
        let (count, _) = self.read_frame_header("word frame")?;
        let payload = self.read_bytes()?;
        Ok(FrameStats {
            raw_bytes: count as u64 * 8,
            stored_bytes: payload.len() as u64,
        })
    }

    /// Advance past a byte frame without decompressing it, returning its
    /// wire statistics.
    pub fn skip_byte_frame(&mut self) -> Result<FrameStats, WireError> {
        let (raw_len, _) = self.read_frame_header("byte frame")?;
        let payload = self.read_bytes()?;
        Ok(FrameStats {
            raw_bytes: raw_len as u64,
            stored_bytes: payload.len() as u64,
        })
    }

    /// Read the next framed section regardless of its tag (v2 image
    /// layout): tag byte, u32-LE body length, body.  The cursor advances
    /// past the whole section; the body is returned as a [`SectionReader`]
    /// borrowing the underlying buffer (zero-copy).
    pub fn read_framed(&mut self) -> Result<SectionReader<'a>, WireError> {
        let byte = self.read_u8()?;
        let tag = SectionTag::from_u8(byte).ok_or(WireError::BadTag {
            context: "section frame",
            tag: byte as u64,
        })?;
        let len = self.read_u32()? as usize;
        let body = self.take(len, "section body")?;
        Ok(SectionReader {
            tag,
            body: WireReader::new(body),
        })
    }

    /// Read a framed section and require its tag to be `expected`.
    pub fn expect_framed(&mut self, expected: SectionTag) -> Result<SectionReader<'a>, WireError> {
        let section = self.read_framed()?;
        if section.tag() != expected {
            return Err(WireError::SectionMismatch {
                expected: expected.name(),
                found: section.tag() as u8,
            });
        }
        Ok(section)
    }
}

/// Wire statistics of one compressed slab frame: the size its content
/// claims uncompressed vs. the bytes it actually occupies on the wire.
/// Produced by [`WireReader::skip_word_frame`] /
/// [`WireReader::skip_byte_frame`] without decompressing anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Decompressed size the frame header declares.
    pub raw_bytes: u64,
    /// Compressed payload bytes stored on the wire.
    pub stored_bytes: u64,
}

impl FrameStats {
    /// Accumulate another frame's statistics.
    pub fn add(&mut self, other: FrameStats) {
        self.raw_bytes += other.raw_bytes;
        self.stored_bytes += other.stored_bytes;
    }
}

/// A framed section's body, produced by [`WireReader::read_framed`] /
/// [`WireReader::expect_framed`].
///
/// Dereferences to [`WireReader`] positioned at the start of the body; the
/// body is a borrowed view of the parent buffer, so slicing a section out
/// of a multi-megabyte image copies nothing.  Call
/// [`SectionReader::finish`] after decoding to assert the body was fully
/// consumed (trailing bytes inside a section are corruption).
#[derive(Debug, Clone)]
pub struct SectionReader<'a> {
    tag: SectionTag,
    body: WireReader<'a>,
}

impl<'a> SectionReader<'a> {
    /// The section's tag.
    pub fn tag(&self) -> SectionTag {
        self.tag
    }

    /// Assert the body was fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.body.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.body.remaining(),
            })
        }
    }
}

impl<'a> Deref for SectionReader<'a> {
    type Target = WireReader<'a>;
    fn deref(&self) -> &WireReader<'a> {
        &self.body
    }
}

impl<'a> DerefMut for SectionReader<'a> {
    fn deref_mut(&mut self) -> &mut WireReader<'a> {
        &mut self.body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::WireWriter;

    #[test]
    fn uvarint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 255, 256, 16383, 16384, u64::MAX] {
            let mut w = WireWriter::new();
            w.write_uvarint(v);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.read_uvarint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn ivarint_roundtrip_boundaries() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::MAX,
            i64::MIN,
            1 << 40,
            -(1 << 40),
        ] {
            let mut w = WireWriter::new();
            w.write_ivarint(v);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.read_ivarint().unwrap(), v);
        }
    }

    #[test]
    fn varint_too_long_rejected() {
        // 11 continuation bytes exceed the 64-bit range.
        let bytes = [0x80u8; 10];
        let mut r = WireReader::new(&bytes);
        let err = r.read_uvarint().unwrap_err();
        // Either we run off the end or hit VarintTooLong depending on length;
        // with exactly 10 continuation bytes the shift check fires first.
        assert!(matches!(
            err,
            WireError::VarintTooLong | WireError::UnexpectedEof { .. }
        ));
    }

    #[test]
    fn header_version_mismatch_detected() {
        for bad in [FORMAT_VERSION + 1, MIN_SUPPORTED_VERSION - 1, 0] {
            let mut w = WireWriter::new();
            w.write_section(SectionTag::Header);
            w.write_u32(MAGIC);
            w.write_u32(bad);
            w.write_str("riscv-sim");
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert!(
                matches!(
                    r.read_header().unwrap_err(),
                    WireError::VersionMismatch { .. }
                ),
                "version {bad} must be rejected"
            );
        }
    }

    #[test]
    fn header_supported_version_range_accepted() {
        for version in MIN_SUPPORTED_VERSION..=FORMAT_VERSION {
            let mut w = WireWriter::new();
            w.write_header_versioned("ia32-sim", version);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let header = r.read_header().unwrap();
            assert_eq!(header.version, version);
            assert_eq!(header.source_arch, "ia32-sim");
            assert!(r.is_empty());
        }
    }

    #[test]
    fn word_slab_roundtrip() {
        let words: Vec<u64> = (0..1000).map(|i| i * 0x0101_0101_0101).collect();
        let mut w = WireWriter::new();
        w.write_words(&words);
        // Length varint + exactly 8 bytes per word, no per-element framing.
        assert_eq!(w.len(), 2 + words.len() * 8);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let mut back = Vec::new();
        assert_eq!(r.read_words_into(&mut back).unwrap(), words.len());
        assert_eq!(back, words);
        assert!(r.is_empty());
    }

    #[test]
    fn word_slab_truncation_detected_before_allocation() {
        let mut w = WireWriter::new();
        w.write_words(&[1, 2, 3, 4]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..bytes.len() - 1]);
        let mut out = Vec::new();
        assert!(matches!(
            r.read_words_into(&mut out).unwrap_err(),
            WireError::UnexpectedEof { .. }
        ));
        assert!(out.is_empty(), "nothing decoded from a truncated slab");
    }

    #[test]
    fn framed_sections_roundtrip_and_skip() {
        let mut w = WireWriter::new();
        {
            let mut s = w.begin_section(SectionTag::PointerTable);
            s.write_uvarint(42);
            s.finish();
        }
        {
            let mut s = w.begin_section(SectionTag::HeapBlocks);
            s.write_bytes(b"payload");
        } // dropped: length patched without an explicit finish
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        // Skip the first section without decoding it.
        let first = r.read_framed().unwrap();
        assert_eq!(first.tag(), SectionTag::PointerTable);
        let mut second = r.expect_framed(SectionTag::HeapBlocks).unwrap();
        assert_eq!(second.read_bytes().unwrap(), b"payload");
        second.finish().unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn framed_section_errors_are_precise() {
        let mut w = WireWriter::new();
        let mut s = w.begin_section(SectionTag::Resume);
        s.write_uvarint(9);
        s.finish();
        let bytes = w.into_bytes();

        // Wrong expected tag.
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.expect_framed(SectionTag::MigrateEnv).unwrap_err(),
            WireError::SectionMismatch { .. }
        ));
        // Truncated body: the frame claims more bytes than remain.
        let mut r = WireReader::new(&bytes[..bytes.len() - 1]);
        assert!(matches!(
            r.read_framed().unwrap_err(),
            WireError::UnexpectedEof {
                context: "section body",
                ..
            }
        ));
        // Unknown tag byte.
        let mut corrupt = bytes.clone();
        corrupt[0] = 0xEE;
        let mut r = WireReader::new(&corrupt);
        assert!(matches!(
            r.read_framed().unwrap_err(),
            WireError::BadTag {
                context: "section frame",
                ..
            }
        ));
        // Undersized frame: decoding succeeds but finish() reports trailing
        // bytes inside the section.
        let mut r = WireReader::new(&bytes);
        let section = r.read_framed().unwrap();
        assert!(matches!(
            section.finish().unwrap_err(),
            WireError::TrailingBytes { .. }
        ));
    }

    #[test]
    fn oversized_usize_errors_instead_of_truncating() {
        // Regression: decoded lengths used to cross to `usize` with a bare
        // `as` cast, which on 32-bit targets truncates anything above
        // u32::MAX.  Every narrowing now goes through a checked
        // conversion behind the MAX_REASONABLE_LEN bound, so a huge
        // uvarint errors identically on every pointer width.
        for huge in [MAX_REASONABLE_LEN + 1, u64::MAX] {
            let mut w = WireWriter::new();
            w.write_uvarint(huge);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert!(
                matches!(
                    r.read_usize().unwrap_err(),
                    WireError::LengthOverflow { len, .. } if len == huge
                ),
                "usize {huge} must be rejected"
            );
            let mut r = WireReader::new(&bytes);
            assert!(matches!(
                r.read_len().unwrap_err(),
                WireError::LengthOverflow { len, .. } if len == huge
            ));
        }
        // The checked conversion itself reports the precise value.
        #[cfg(target_pointer_width = "32")]
        assert!(matches!(
            super::checked_usize(u64::from(u32::MAX) + 1, "test"),
            Err(WireError::LengthOverflow { .. })
        ));
        // The bound is inclusive: MAX_REASONABLE_LEN itself stays decodable
        // where the host can represent it.
        #[cfg(target_pointer_width = "64")]
        {
            let mut w = WireWriter::new();
            w.write_uvarint(MAX_REASONABLE_LEN);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.read_usize().unwrap() as u64, MAX_REASONABLE_LEN);
        }
    }

    #[test]
    fn header_bad_magic_detected() {
        let mut w = WireWriter::new();
        w.write_section(SectionTag::Header);
        w.write_u32(0x1234_5678);
        w.write_u32(FORMAT_VERSION);
        w.write_str("x86_64");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.read_header().unwrap_err(),
            WireError::BadMagic { .. }
        ));
    }

    #[test]
    fn section_mismatch_reported() {
        let mut w = WireWriter::new();
        w.write_section(SectionTag::HeapBlocks);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let err = r.expect_section(SectionTag::PointerTable).unwrap_err();
        assert!(matches!(err, WireError::SectionMismatch { .. }));
    }

    #[test]
    fn bool_rejects_other_bytes() {
        let bytes = [2u8];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.read_bool().unwrap_err(),
            WireError::BadTag { .. }
        ));
    }
}
