//! The decode half of the wire format.

use crate::error::WireError;
use crate::tags::{SectionTag, FORMAT_VERSION, MAGIC};

/// Sanity bound on any single length prefix.  Migration images for the
/// workloads in the paper are a few megabytes; a length prefix claiming more
/// than this is corruption or an adversarial image and is rejected before we
/// try to allocate for it.
pub const MAX_REASONABLE_LEN: u64 = 1 << 32;

/// Cursor-style decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Create a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                context,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a single byte.
    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u16`.
    pub fn read_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn read_i64(&mut self) -> Result<i64, WireError> {
        Ok(self.read_u64()? as i64)
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn read_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Read a boolean; any byte other than 0 or 1 is an error.
    pub fn read_bool(&mut self) -> Result<bool, WireError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag {
                context: "bool",
                tag: tag as u64,
            }),
        }
    }

    /// Read an unsigned LEB128 varint.
    pub fn read_uvarint(&mut self) -> Result<u64, WireError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift >= 64 {
                return Err(WireError::VarintTooLong);
            }
            result |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Read a zig-zag signed varint.
    pub fn read_ivarint(&mut self) -> Result<i64, WireError> {
        let zz = self.read_uvarint()?;
        Ok(((zz >> 1) as i64) ^ -((zz & 1) as i64))
    }

    /// Read a length prefix, applying the [`MAX_REASONABLE_LEN`] sanity bound
    /// and also bounding it by the number of bytes remaining (an element
    /// cannot occupy less than one byte, so a length greater than
    /// `remaining()` is always corrupt).
    pub fn read_len(&mut self) -> Result<usize, WireError> {
        let len = self.read_uvarint()?;
        if len > MAX_REASONABLE_LEN {
            return Err(WireError::LengthOverflow {
                context: "sequence",
                len,
            });
        }
        Ok(len as usize)
    }

    /// Read a length-prefixed byte slice.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.read_len()?;
        self.take(len, "bytes")
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<&'a str, WireError> {
        let bytes = self.read_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)
    }

    /// Read a uvarint-encoded `usize`.
    pub fn read_usize(&mut self) -> Result<usize, WireError> {
        Ok(self.read_uvarint()? as usize)
    }

    /// Read and validate the standard image header written by
    /// [`crate::WireWriter::write_header`]; returns the source architecture.
    pub fn read_header(&mut self) -> Result<String, WireError> {
        self.expect_section(SectionTag::Header)?;
        let magic = self.read_u32()?;
        if magic != MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
        let version = self.read_u32()?;
        if version != FORMAT_VERSION {
            return Err(WireError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        Ok(self.read_str()?.to_owned())
    }

    /// Read a section tag and require it to be `expected`.
    pub fn expect_section(&mut self, expected: SectionTag) -> Result<(), WireError> {
        let byte = self.read_u8()?;
        if SectionTag::from_u8(byte) == Some(expected) {
            Ok(())
        } else {
            Err(WireError::SectionMismatch {
                expected: expected.name(),
                found: byte,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::WireWriter;

    #[test]
    fn uvarint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 255, 256, 16383, 16384, u64::MAX] {
            let mut w = WireWriter::new();
            w.write_uvarint(v);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.read_uvarint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn ivarint_roundtrip_boundaries() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::MAX,
            i64::MIN,
            1 << 40,
            -(1 << 40),
        ] {
            let mut w = WireWriter::new();
            w.write_ivarint(v);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.read_ivarint().unwrap(), v);
        }
    }

    #[test]
    fn varint_too_long_rejected() {
        // 11 continuation bytes exceed the 64-bit range.
        let bytes = [0x80u8; 10];
        let mut r = WireReader::new(&bytes);
        let err = r.read_uvarint().unwrap_err();
        // Either we run off the end or hit VarintTooLong depending on length;
        // with exactly 10 continuation bytes the shift check fires first.
        assert!(matches!(
            err,
            WireError::VarintTooLong | WireError::UnexpectedEof { .. }
        ));
    }

    #[test]
    fn header_version_mismatch_detected() {
        let mut w = WireWriter::new();
        w.write_section(SectionTag::Header);
        w.write_u32(MAGIC);
        w.write_u32(FORMAT_VERSION + 1);
        w.write_str("riscv-sim");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.read_header().unwrap_err(),
            WireError::VersionMismatch { .. }
        ));
    }

    #[test]
    fn header_bad_magic_detected() {
        let mut w = WireWriter::new();
        w.write_section(SectionTag::Header);
        w.write_u32(0x1234_5678);
        w.write_u32(FORMAT_VERSION);
        w.write_str("x86_64");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.read_header().unwrap_err(),
            WireError::BadMagic { .. }
        ));
    }

    #[test]
    fn section_mismatch_reported() {
        let mut w = WireWriter::new();
        w.write_section(SectionTag::HeapBlocks);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let err = r.expect_section(SectionTag::PointerTable).unwrap_err();
        assert!(matches!(err, WireError::SectionMismatch { .. }));
    }

    #[test]
    fn bool_rejects_other_bytes() {
        let bytes = [2u8];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.read_bool().unwrap_err(),
            WireError::BadTag { .. }
        ));
    }
}
