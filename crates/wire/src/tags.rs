//! Image magic, format version and section tags.

/// Magic number written at the start of every migration/checkpoint image.
///
/// Spells "MJVE" in ASCII when viewed little-endian in a hex dump, which is
/// handy when inspecting checkpoint files on disk.
pub const MAGIC: u32 = 0x4556_4A4D;

/// Current version of the wire format — the **v5 image layout**: framed,
/// length-prefixed sections whose heap payloads carry **codec-tagged
/// compressed slab frames** (see `mojave-codec` and the "Compression"
/// chapter of `docs/WIRE_FORMAT.md`), with optional delta-against-base
/// heap payloads.
pub const FORMAT_VERSION: u32 = 5;

/// The **batched (v4) image layout**: framed sections and slab-encoded
/// heap blocks, no compression.  Decoders still accept it; encoders only
/// produce it when regenerating back-compat fixtures.
pub const BATCHED_VERSION: u32 = 4;

/// Oldest format version this runtime still decodes: the **v1 image
/// layout** (unframed sections, per-word heap encoding).  Encoders only
/// ever produce [`FORMAT_VERSION`]; v1 and [`BATCHED_VERSION`] support
/// exists so checkpoint images written by older runtimes remain loadable.
pub const MIN_SUPPORTED_VERSION: u32 = 3;

/// Section tags delimit the major regions of a migration image so that a
/// decoder can fail fast with a precise error instead of misinterpreting
/// bytes from one section as another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SectionTag {
    /// Image header (magic, version, source architecture).
    Header = 0x01,
    /// Serialised FIR program text.
    FirProgram = 0x02,
    /// The pointer table (indices and block offsets).
    PointerTable = 0x03,
    /// Heap block payloads.
    HeapBlocks = 0x04,
    /// The function table.
    FunctionTable = 0x05,
    /// The migrate environment (live variables packed into the heap).
    MigrateEnv = 0x06,
    /// Resume metadata (migration label, protocol, target string).
    Resume = 0x07,
    /// Compiled bytecode image (only present in binary-migration images).
    Bytecode = 0x08,
    /// Speculation-state summary (open levels, for diagnostics only).
    Speculation = 0x09,
    /// Incremental heap payload: dirty blocks + pointer-table fixups against
    /// a named base checkpoint (v2 images only).
    HeapDelta = 0x0A,
}

impl SectionTag {
    /// All tags, in the order sections appear in an image.
    pub const ALL: [SectionTag; 10] = [
        SectionTag::Header,
        SectionTag::FirProgram,
        SectionTag::PointerTable,
        SectionTag::HeapBlocks,
        SectionTag::FunctionTable,
        SectionTag::MigrateEnv,
        SectionTag::Resume,
        SectionTag::Bytecode,
        SectionTag::Speculation,
        SectionTag::HeapDelta,
    ];

    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            SectionTag::Header => "Header",
            SectionTag::FirProgram => "FirProgram",
            SectionTag::PointerTable => "PointerTable",
            SectionTag::HeapBlocks => "HeapBlocks",
            SectionTag::FunctionTable => "FunctionTable",
            SectionTag::MigrateEnv => "MigrateEnv",
            SectionTag::Resume => "Resume",
            SectionTag::Bytecode => "Bytecode",
            SectionTag::Speculation => "Speculation",
            SectionTag::HeapDelta => "HeapDelta",
        }
    }

    /// Decode a tag byte.
    pub fn from_u8(byte: u8) -> Option<SectionTag> {
        SectionTag::ALL.into_iter().find(|t| *t as u8 == byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip_through_bytes() {
        for tag in SectionTag::ALL {
            assert_eq!(SectionTag::from_u8(tag as u8), Some(tag));
        }
        assert_eq!(SectionTag::from_u8(0x00), None);
        assert_eq!(SectionTag::from_u8(0xFF), None);
    }

    #[test]
    fn tag_names_are_unique() {
        let mut names: Vec<_> = SectionTag::ALL.iter().map(|t| t.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), SectionTag::ALL.len());
    }
}
