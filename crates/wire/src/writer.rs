//! The encode half of the wire format.

use crate::tags::{SectionTag, FORMAT_VERSION, MAGIC};
use mojave_codec::CodecId;
use std::ops::{Deref, DerefMut};

/// Append-only encoder producing the canonical Mojave byte format.
///
/// The writer never fails: it owns a growable `Vec<u8>` and every `write_*`
/// method appends the little-endian / LEB128 encoding of its argument.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    /// Create a writer with a pre-sized buffer, useful when the caller knows
    /// the approximate image size (e.g. packing a heap of known byte count).
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Pre-grow the buffer for `additional` upcoming bytes, so a burst of
    /// small writes (e.g. a block's tag and payload slabs) costs at most
    /// one reallocation.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`, little-endian.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`, little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian two's complement.
    pub fn write_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its IEEE-754 bit pattern (NaN payloads preserved).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Write a boolean as a single 0/1 byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Write an unsigned LEB128 varint.
    pub fn write_uvarint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Write a signed varint using zig-zag encoding.
    pub fn write_ivarint(&mut self, v: i64) {
        let zz = ((v << 1) ^ (v >> 63)) as u64;
        self.write_uvarint(zz);
    }

    /// Write a length-prefixed byte slice.
    ///
    /// This is the zero-copy slab path for byte payloads: one length prefix
    /// followed by a single `extend_from_slice` of the whole slab, which the
    /// reader hands back as a borrowed `&[u8]` view.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_uvarint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Write a length-prefixed slab of 64-bit words as one contiguous
    /// little-endian region.
    ///
    /// This is the batched counterpart of calling [`WireWriter::write_u64`]
    /// in a loop: the buffer is grown once and filled with a tight LE copy
    /// loop (which compiles down to a memcpy on little-endian hosts), so the
    /// per-element cost is a plain 8-byte store instead of a `Vec` growth
    /// check plus a varint encode.  Decode with
    /// [`crate::WireReader::read_words_into`].
    pub fn write_words(&mut self, words: &[u64]) {
        self.write_uvarint(words.len() as u64);
        let start = self.buf.len();
        self.buf.resize(start + words.len() * 8, 0);
        for (chunk, word) in self.buf[start..].chunks_exact_mut(8).zip(words) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
    }

    /// Write a codec-tagged compressed **word-slab frame** (v5 images):
    /// uvarint word count, codec id byte, then the length-prefixed
    /// compressed payload.  Decode with
    /// [`crate::WireReader::read_word_frame_into`].
    ///
    /// `codec` is typically picked by [`mojave_codec::choose_words`]; the
    /// [`CodecId::Raw`] fast path writes the slab bytes directly (no
    /// staging copy), so an incompressible slab costs the same as
    /// [`WireWriter::write_words`] plus one id byte.
    pub fn write_word_frame(&mut self, words: &[u64], codec: CodecId) {
        self.write_uvarint(words.len() as u64);
        self.write_u8(codec as u8);
        if codec == CodecId::Raw {
            self.write_uvarint(words.len() as u64 * 8);
            let start = self.buf.len();
            self.buf.resize(start + words.len() * 8, 0);
            for (chunk, word) in self.buf[start..].chunks_exact_mut(8).zip(words) {
                chunk.copy_from_slice(&word.to_le_bytes());
            }
        } else {
            let mut payload = Vec::new();
            mojave_codec::compress_words(codec, words, &mut payload);
            self.write_bytes(&payload);
        }
    }

    /// Write a word frame from already-compressed parts: `payload` must
    /// be `codec`'s valid encoding of exactly `word_count` words —
    /// produced e.g. by a streaming [`mojave_codec::VarintStream`] fused
    /// into the caller's staging loop.  The normal entry point is
    /// [`WireWriter::write_word_frame`].
    pub fn write_word_frame_parts(&mut self, word_count: usize, codec: CodecId, payload: &[u8]) {
        self.write_uvarint(word_count as u64);
        self.write_u8(codec as u8);
        self.write_bytes(payload);
    }

    /// Write a codec-tagged compressed **byte-slab frame** (v5 images):
    /// uvarint raw length, codec id byte, then the length-prefixed
    /// compressed payload.  Only [`CodecId::byte_capable`] codecs apply;
    /// pick one with [`mojave_codec::choose_bytes`].  Decode with
    /// [`crate::WireReader::read_byte_frame`].
    pub fn write_byte_frame(&mut self, bytes: &[u8], codec: CodecId) {
        self.write_uvarint(bytes.len() as u64);
        self.write_u8(codec as u8);
        if codec == CodecId::Raw {
            self.write_bytes(bytes);
        } else {
            let mut payload = Vec::new();
            mojave_codec::compress_bytes(codec, bytes, &mut payload);
            self.write_bytes(&payload);
        }
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Write a `usize` as a uvarint (canonical regardless of host width).
    pub fn write_usize(&mut self, v: usize) {
        self.write_uvarint(v as u64);
    }

    /// Write the standard image header: magic, format version and an
    /// arbitrary source-architecture string (the paper records the source
    /// architecture so heterogeneous migration can be observed in logs even
    /// though the heap needs no translation).
    pub fn write_header(&mut self, source_arch: &str) {
        self.write_header_versioned(source_arch, FORMAT_VERSION);
    }

    /// Write an image header carrying an explicit format version.
    ///
    /// Normal encoders always emit [`FORMAT_VERSION`] via
    /// [`WireWriter::write_header`]; this entry point exists so back-compat
    /// tests (and tools regenerating legacy fixtures) can produce v1 images.
    pub fn write_header_versioned(&mut self, source_arch: &str, version: u32) {
        self.write_section(SectionTag::Header);
        self.write_u32(MAGIC);
        self.write_u32(version);
        self.write_str(source_arch);
    }

    /// Write a section tag byte.
    pub fn write_section(&mut self, tag: SectionTag) {
        self.write_u8(tag as u8);
    }

    /// Open a framed, length-prefixed section (v2 image layout).
    ///
    /// Everything written through the returned [`SectionWriter`] becomes the
    /// section body; when the guard is finished (or dropped) the byte length
    /// of the body is patched into the reserved length slot, so readers can
    /// skip or slice sections without understanding their contents.
    pub fn begin_section(&mut self, tag: SectionTag) -> SectionWriter<'_> {
        self.write_section(tag);
        let len_pos = self.buf.len();
        self.write_u32(0); // patched by SectionWriter::finish / Drop
        SectionWriter {
            writer: self,
            len_pos,
        }
    }
}

/// Guard for a framed section opened with [`WireWriter::begin_section`].
///
/// Dereferences to [`WireWriter`], so every `write_*` method is available on
/// it; the section's length prefix is patched when the guard is dropped.
///
/// ```
/// use mojave_wire::{SectionTag, WireWriter};
///
/// let mut w = WireWriter::new();
/// let mut s = w.begin_section(SectionTag::Resume);
/// s.write_uvarint(7);
/// s.finish();
/// let mut r = mojave_wire::WireReader::new(w.as_bytes());
/// let mut body = r.expect_framed(SectionTag::Resume).unwrap();
/// assert_eq!(body.read_uvarint().unwrap(), 7);
/// ```
#[derive(Debug)]
pub struct SectionWriter<'w> {
    writer: &'w mut WireWriter,
    len_pos: usize,
}

impl SectionWriter<'_> {
    /// Close the section, patching its length prefix.  Equivalent to
    /// dropping the guard; provided so the close is visible in the code.
    pub fn finish(self) {}
}

impl Drop for SectionWriter<'_> {
    fn drop(&mut self) {
        let body_len = self.writer.buf.len() - (self.len_pos + 4);
        assert!(
            body_len <= u32::MAX as usize,
            "section body exceeds the 4 GiB frame limit"
        );
        let le = (body_len as u32).to_le_bytes();
        self.writer.buf[self.len_pos..self.len_pos + 4].copy_from_slice(&le);
    }
}

impl Deref for SectionWriter<'_> {
    type Target = WireWriter;
    fn deref(&self) -> &WireWriter {
        self.writer
    }
}

impl DerefMut for SectionWriter<'_> {
    fn deref_mut(&mut self) -> &mut WireWriter {
        self.writer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut w = WireWriter::new();
            w.write_uvarint(v);
            assert_eq!(w.len(), 1, "value {v}");
        }
    }

    #[test]
    fn uvarint_known_encodings() {
        let mut w = WireWriter::new();
        w.write_uvarint(300);
        assert_eq!(w.as_bytes(), &[0xAC, 0x02]);
    }

    #[test]
    fn ivarint_zigzag() {
        // -1 zig-zags to 1, 1 zig-zags to 2.
        let mut w = WireWriter::new();
        w.write_ivarint(-1);
        w.write_ivarint(1);
        assert_eq!(w.as_bytes(), &[1, 2]);
    }

    #[test]
    fn header_layout() {
        let mut w = WireWriter::new();
        w.write_header("x86_64-sim");
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], SectionTag::Header as u8);
        assert_eq!(&bytes[1..5], &MAGIC.to_le_bytes());
    }
}
