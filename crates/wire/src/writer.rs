//! The encode half of the wire format.

use crate::tags::{SectionTag, FORMAT_VERSION, MAGIC};

/// Append-only encoder producing the canonical Mojave byte format.
///
/// The writer never fails: it owns a growable `Vec<u8>` and every `write_*`
/// method appends the little-endian / LEB128 encoding of its argument.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    /// Create a writer with a pre-sized buffer, useful when the caller knows
    /// the approximate image size (e.g. packing a heap of known byte count).
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`, little-endian.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`, little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian two's complement.
    pub fn write_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its IEEE-754 bit pattern (NaN payloads preserved).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Write a boolean as a single 0/1 byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Write an unsigned LEB128 varint.
    pub fn write_uvarint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Write a signed varint using zig-zag encoding.
    pub fn write_ivarint(&mut self, v: i64) {
        let zz = ((v << 1) ^ (v >> 63)) as u64;
        self.write_uvarint(zz);
    }

    /// Write a length-prefixed byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_uvarint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Write a `usize` as a uvarint (canonical regardless of host width).
    pub fn write_usize(&mut self, v: usize) {
        self.write_uvarint(v as u64);
    }

    /// Write the standard image header: magic, format version and an
    /// arbitrary source-architecture string (the paper records the source
    /// architecture so heterogeneous migration can be observed in logs even
    /// though the heap needs no translation).
    pub fn write_header(&mut self, source_arch: &str) {
        self.write_section(SectionTag::Header);
        self.write_u32(MAGIC);
        self.write_u32(FORMAT_VERSION);
        self.write_str(source_arch);
    }

    /// Write a section tag byte.
    pub fn write_section(&mut self, tag: SectionTag) {
        self.write_u8(tag as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut w = WireWriter::new();
            w.write_uvarint(v);
            assert_eq!(w.len(), 1, "value {v}");
        }
    }

    #[test]
    fn uvarint_known_encodings() {
        let mut w = WireWriter::new();
        w.write_uvarint(300);
        assert_eq!(w.as_bytes(), &[0xAC, 0x02]);
    }

    #[test]
    fn ivarint_zigzag() {
        // -1 zig-zags to 1, 1 zig-zags to 2.
        let mut w = WireWriter::new();
        w.write_ivarint(-1);
        w.write_ivarint(1);
        assert_eq!(w.as_bytes(), &[1, 2]);
    }

    #[test]
    fn header_layout() {
        let mut w = WireWriter::new();
        w.write_header("x86_64-sim");
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], SectionTag::Header as u8);
        assert_eq!(&bytes[1..5], &MAGIC.to_le_bytes());
    }
}
