//! Hardening tests for the v5 compressed slab frames: untrusted input —
//! truncated payloads, decompressed-length bombs, unknown codec ids and
//! out-of-range LZ copy offsets — must each produce a precise
//! [`WireError`], never a panic or an unbounded allocation.

use mojave_codec::CodecError;
use mojave_wire::{CodecId, WireError, WireReader, WireWriter, MAX_REASONABLE_LEN};

fn frame_bytes(words: &[u64], codec: CodecId) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.write_word_frame(words, codec);
    w.into_bytes()
}

#[test]
fn word_frames_roundtrip_every_codec() {
    let slab: Vec<u64> = (0..1000).map(|i| i % 97).collect();
    for codec in CodecId::ALL {
        let bytes = frame_bytes(&slab, codec);
        let mut r = WireReader::new(&bytes);
        let mut out = Vec::new();
        assert_eq!(r.read_word_frame_into(&mut out).unwrap(), slab.len());
        assert_eq!(out, slab, "{codec}");
        assert!(r.is_empty());
    }
}

#[test]
fn byte_frames_roundtrip_raw_and_lz() {
    let data: Vec<u8> = (0..4000u32).map(|i| (i % 11) as u8).collect();
    for codec in [CodecId::Raw, CodecId::Lz] {
        let mut w = WireWriter::new();
        w.write_byte_frame(&data, codec);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_byte_frame().unwrap(), data, "{codec}");
        assert!(r.is_empty());
    }
}

#[test]
fn truncated_compressed_payload_is_a_precise_error() {
    let slab: Vec<u64> = (0..500).collect();
    for codec in CodecId::ALL {
        let bytes = frame_bytes(&slab, codec);
        // Cut inside the compressed payload: either the payload slice
        // itself is short (UnexpectedEof) — or, once sliced, the codec
        // notices the stream ends early (Codec error).
        for cut in [bytes.len() - 1, bytes.len() / 2, 3] {
            let mut r = WireReader::new(&bytes[..cut]);
            let mut out = Vec::new();
            let err = r.read_word_frame_into(&mut out).unwrap_err();
            assert!(
                matches!(err, WireError::UnexpectedEof { .. } | WireError::Codec(_)),
                "{codec} cut at {cut}: got {err:?}"
            );
        }
    }
}

#[test]
fn raw_length_overflow_bomb_is_rejected_before_allocation() {
    // A frame claiming a decompressed length far beyond the sanity bound:
    // rejected at the header, before any allocation.
    let mut w = WireWriter::new();
    w.write_uvarint(MAX_REASONABLE_LEN + 1);
    w.write_u8(CodecId::Lz as u8);
    w.write_bytes(&[0, 0, 0]);
    let bytes = w.into_bytes();
    let err = WireReader::new(&bytes).read_byte_frame().unwrap_err();
    assert!(
        matches!(
            err,
            WireError::LengthOverflow {
                context: "byte frame",
                ..
            }
        ),
        "got {err:?}"
    );

    // Word-frame variant: the count bound is MAX_REASONABLE_LEN / 8.
    let mut w = WireWriter::new();
    w.write_uvarint(MAX_REASONABLE_LEN / 8 + 1);
    w.write_u8(CodecId::VarintLz as u8);
    w.write_bytes(&[0, 0, 0]);
    let bytes = w.into_bytes();
    let mut out = Vec::new();
    let err = WireReader::new(&bytes)
        .read_word_frame_into(&mut out)
        .unwrap_err();
    assert!(
        matches!(err, WireError::LengthOverflow { .. }),
        "got {err:?}"
    );
}

#[test]
fn plausible_bomb_claims_fail_without_matching_allocation() {
    // A claimed decompressed length within the sanity bound but vastly
    // larger than what the 4-byte payload can produce (≫ the section
    // size): a precise error, and the output buffer never grows to the
    // claim.
    let claimed: u64 = 512 * 1024 * 1024; // 512 MiB from 4 bytes
    for codec in [CodecId::Lz, CodecId::Varint, CodecId::VarintLz] {
        let mut w = WireWriter::new();
        w.write_uvarint(claimed);
        w.write_u8(codec as u8);
        w.write_bytes(&[1, 2, 3, 4]);
        let bytes = w.into_bytes();
        if codec == CodecId::Lz {
            let err = WireReader::new(&bytes).read_byte_frame().unwrap_err();
            assert!(matches!(err, WireError::Codec(_)), "{codec}: got {err:?}");
        }
        let mut out = Vec::new();
        let err = WireReader::new(&bytes)
            .read_word_frame_into(&mut out)
            .unwrap_err();
        assert!(matches!(err, WireError::Codec(_)), "{codec}: got {err:?}");
        assert!(
            out.capacity() < (1 << 22),
            "{codec} allocated {} words for a 4-byte payload",
            out.capacity()
        );
    }
}

#[test]
fn unknown_codec_id_is_a_bad_tag() {
    let mut w = WireWriter::new();
    w.write_uvarint(8); // plausible length
    w.write_u8(0x7E); // no such codec
    w.write_bytes(&[0; 8]);
    let bytes = w.into_bytes();

    let mut out = Vec::new();
    let err = WireReader::new(&bytes)
        .read_word_frame_into(&mut out)
        .unwrap_err();
    assert!(
        matches!(
            err,
            WireError::BadTag {
                context: "codec id",
                tag: 0x7E
            }
        ),
        "got {err:?}"
    );
    let err = WireReader::new(&bytes).read_byte_frame().unwrap_err();
    assert!(matches!(
        err,
        WireError::BadTag {
            context: "codec id",
            ..
        }
    ));
}

#[test]
fn word_only_codec_in_a_byte_frame_is_rejected() {
    let mut w = WireWriter::new();
    w.write_uvarint(4);
    w.write_u8(CodecId::Varint as u8);
    w.write_bytes(&[0, 0, 0, 0]);
    let bytes = w.into_bytes();
    let err = WireReader::new(&bytes).read_byte_frame().unwrap_err();
    assert!(
        matches!(
            err,
            WireError::Codec(CodecError::WordCodecOnBytes {
                codec: CodecId::Varint
            })
        ),
        "got {err:?}"
    );
}

#[test]
fn lz_copy_offset_out_of_range_is_a_precise_error() {
    // Hand-craft an LZ stream whose first token copies from before the
    // start of the output: control (len 4, odd) then distance 5.
    let mut w = WireWriter::new();
    w.write_uvarint(16); // claimed raw length
    w.write_u8(CodecId::Lz as u8);
    w.write_bytes(&[0x01, 0x05]);
    let bytes = w.into_bytes();
    let err = WireReader::new(&bytes).read_byte_frame().unwrap_err();
    assert!(
        matches!(
            err,
            WireError::Codec(CodecError::BadOffset {
                distance: 5,
                produced: 0
            })
        ),
        "got {err:?}"
    );
}

#[test]
fn raw_frame_with_mismatched_payload_is_rejected() {
    // Raw frames must carry exactly 8 × count payload bytes.
    let mut w = WireWriter::new();
    w.write_uvarint(4); // four words claimed
    w.write_u8(CodecId::Raw as u8);
    w.write_bytes(&[0; 16]); // but only two words of payload
    let bytes = w.into_bytes();
    let mut out = Vec::new();
    let err = WireReader::new(&bytes)
        .read_word_frame_into(&mut out)
        .unwrap_err();
    assert!(
        matches!(err, WireError::Codec(CodecError::LengthMismatch { .. })),
        "got {err:?}"
    );
}

#[test]
fn skip_frames_report_wire_stats_without_decompressing() {
    let slab: Vec<u64> = vec![7; 10_000];
    let mut w = WireWriter::new();
    w.write_word_frame(&slab, CodecId::VarintLz);
    w.write_byte_frame(&[3u8; 5000], CodecId::Lz);
    let bytes = w.into_bytes();

    let mut r = WireReader::new(&bytes);
    let words = r.skip_word_frame().unwrap();
    assert_eq!(words.raw_bytes, 80_000);
    assert!(words.stored_bytes < 100, "constant slab compresses hard");
    let byte_frame = r.skip_byte_frame().unwrap();
    assert_eq!(byte_frame.raw_bytes, 5000);
    assert!(byte_frame.stored_bytes < 50);
    assert!(r.is_empty());

    let mut total = mojave_wire::FrameStats::default();
    total.add(words);
    total.add(byte_frame);
    assert_eq!(total.raw_bytes, 85_000);
}
