//! Property tests: every value the writer can produce is decoded back
//! bit-for-bit, and the decoder never panics on arbitrary byte soup.

use mojave_wire::{from_bytes, to_bytes, SectionTag, WireReader, WireWriter};
use proptest::prelude::*;

proptest! {
    #[test]
    fn uvarint_roundtrip(v in any::<u64>()) {
        let mut w = WireWriter::new();
        w.write_uvarint(v);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        prop_assert_eq!(r.read_uvarint().unwrap(), v);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn ivarint_roundtrip(v in any::<i64>()) {
        let mut w = WireWriter::new();
        w.write_ivarint(v);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        prop_assert_eq!(r.read_ivarint().unwrap(), v);
    }

    #[test]
    fn f64_bits_roundtrip(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        let mut w = WireWriter::new();
        w.write_f64(v);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        prop_assert_eq!(r.read_f64().unwrap().to_bits(), bits);
    }

    #[test]
    fn string_roundtrip(s in ".*") {
        let mut w = WireWriter::new();
        w.write_str(&s);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        prop_assert_eq!(r.read_str().unwrap(), s.as_str());
    }

    #[test]
    fn byte_vec_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut w = WireWriter::new();
        w.write_bytes(&data);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        prop_assert_eq!(r.read_bytes().unwrap(), data.as_slice());
    }

    #[test]
    fn vec_u64_codec_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..256)) {
        let bytes = to_bytes(&v);
        let back: Vec<u64> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(v, back);
    }

    #[test]
    fn mixed_sequence_roundtrip(
        ints in proptest::collection::vec(any::<i64>(), 0..64),
        floats in proptest::collection::vec(any::<f64>(), 0..64),
        strs in proptest::collection::vec(".{0,32}", 0..32),
    ) {
        let mut w = WireWriter::new();
        w.write_usize(ints.len());
        for &i in &ints { w.write_ivarint(i); }
        w.write_usize(floats.len());
        for &f in &floats { w.write_f64(f); }
        w.write_usize(strs.len());
        for s in &strs { w.write_str(s); }
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        let n = r.read_usize().unwrap();
        prop_assert_eq!(n, ints.len());
        for &i in &ints { prop_assert_eq!(r.read_ivarint().unwrap(), i); }
        let n = r.read_usize().unwrap();
        prop_assert_eq!(n, floats.len());
        for &f in &floats { prop_assert_eq!(r.read_f64().unwrap().to_bits(), f.to_bits()); }
        let n = r.read_usize().unwrap();
        prop_assert_eq!(n, strs.len());
        for s in &strs { prop_assert_eq!(r.read_str().unwrap(), s.as_str()); }
        prop_assert!(r.is_empty());
    }

    /// The batched slab path agrees with the per-element path for every
    /// word sequence and is bit-exact.
    #[test]
    fn word_slab_roundtrip(words in proptest::collection::vec(any::<u64>(), 0..2048)) {
        let mut w = WireWriter::new();
        w.write_words(&words);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let mut back = Vec::new();
        prop_assert_eq!(r.read_words_into(&mut back).unwrap(), words.len());
        prop_assert_eq!(back, words);
        prop_assert!(r.is_empty());
    }

    /// Truncating a word slab anywhere is always detected, and never
    /// decodes partial data.
    #[test]
    fn word_slab_truncation_always_detected(
        words in proptest::collection::vec(any::<u64>(), 1..64),
        cut_seed in any::<u16>(),
    ) {
        let mut w = WireWriter::new();
        w.write_words(&words);
        let bytes = w.into_bytes();
        let cut = cut_seed as usize % (bytes.len() - 1); // strictly shorter
        let mut r = WireReader::new(&bytes[..cut]);
        let mut out = Vec::new();
        prop_assert!(r.read_words_into(&mut out).is_err());
        prop_assert!(out.is_empty());
    }

    /// Framed sections round-trip any payload and report their exact tag.
    #[test]
    fn framed_section_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
        tag_idx in 0usize..SectionTag::ALL.len(),
    ) {
        let tag = SectionTag::ALL[tag_idx];
        let mut w = WireWriter::new();
        {
            let mut s = w.begin_section(tag);
            s.write_bytes(&payload);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let mut section = r.read_framed().unwrap();
        prop_assert_eq!(section.tag(), tag);
        prop_assert_eq!(section.read_bytes().unwrap(), payload.as_slice());
        section.finish().unwrap();
        prop_assert!(r.is_empty());
    }

    /// Decoding arbitrary garbage must never panic — the migration server
    /// receives images from untrusted peers.
    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut r = WireReader::new(&data);
        let _ = r.read_header();
        let mut r = WireReader::new(&data);
        let _ = r.read_str();
        let mut r = WireReader::new(&data);
        let _ = r.read_bytes();
        let mut r = WireReader::new(&data);
        let mut out = Vec::new();
        let _ = r.read_words_into(&mut out);
        let mut r = WireReader::new(&data);
        while let Ok(section) = r.read_framed() {
            let _ = section.finish();
        }
        let mut r = WireReader::new(&data);
        while r.read_uvarint().is_ok() {}
        let _ = from_bytes::<Vec<u64>>(&data);
        let _ = from_bytes::<Vec<String>>(&data);
    }
}
