//! The asynchronous checkpoint pipeline, end to end: a heap is frozen
//! with a zero-pause COW snapshot, the expensive encode + store delivery
//! runs on a pipeline worker thread, and the mutator keeps writing to the
//! same blocks **while the checkpoint is still in flight** — the frozen
//! originals stay readable, first writes clone lazily.
//!
//! The example prints the pipeline's [`PipelineStats`] so the split is
//! visible: the mutator pause (freeze + submit) vs. the off-thread encode
//! time, and the raw vs. stored checkpoint bytes.
//!
//! ```text
//! cargo run --example async_checkpointing
//! ```

use mojave::core::{CheckpointStore, InMemorySink, Process, ProcessConfig};
use mojave::fir::MigrateProtocol;
use mojave::heap::Word;
use mojave::runtime::{AsyncSink, PipelineConfig};
use mojave::wire::CodecSet;

fn main() {
    // A process with ~1 MiB of live heap data.
    let program =
        mojave::lang::compile_source("int main() { return 0; }").expect("program compiles");
    let mut process = Process::new(program, ProcessConfig::default()).expect("program verifies");
    let mut ptrs = Vec::new();
    while process.heap().live_bytes() < 1024 * 1024 {
        let len = ptrs.len();
        ptrs.push(
            process
                .heap_mut()
                .alloc_array(64, Word::Int(len as i64))
                .expect("allocates"),
        );
    }
    println!(
        "live heap: {} KiB in {} blocks",
        process.heap().live_bytes() / 1024,
        process.heap().live_blocks()
    );

    let store = CheckpointStore::new();
    let mut sink = AsyncSink::new(
        Box::new(InMemorySink::with_store(store.clone())),
        PipelineConfig::default(),
    );

    // Freeze (the only mutator pause) and hand the checkpoint to the
    // pipeline.  `Process::run` does this automatically when
    // `ProcessConfig::async_checkpoints` is set; here we drive the same
    // API by hand so the overlap is observable.
    let pack = process
        .pack_snapshot(0, Word::Fun(0), &[], None)
        .expect("snapshot pack");
    let frozen_blocks = pack.heap.block_count();
    use mojave::core::MigrationSink;
    sink.deliver_deferred(MigrateProtocol::Checkpoint, "async-ck", pack);

    // Mutate concurrently with the in-flight checkpoint: every store that
    // hits a still-shared block un-shares it (copy-on-write), leaving the
    // frozen original for the encoder.
    for (i, ptr) in ptrs.iter().enumerate() {
        process
            .heap_mut()
            .store(*ptr, (i % 64) as i64, Word::Int(-1))
            .expect("stores");
    }
    let stats = process.heap().stats();
    println!(
        "mutated {} blocks while the checkpoint was in flight \
         ({} copy-on-write un-sharing copies, {} KiB copied lazily)",
        ptrs.len(),
        stats.shared_payload_copies,
        stats.shared_payload_bytes / 1024
    );

    // Wait for the delivery, then show the pipeline accounting.
    sink.drain();
    let pipeline = sink.stats();
    println!("pipeline stats: {pipeline:#?}");
    assert_eq!(pipeline.completed, 1);
    assert!(store.contains("async-ck"));

    // The stored image is the *frozen* state: decode it and check a value
    // the mutator overwrote after the freeze.
    let image = store.load("async-ck").expect("checkpoint loads");
    let frozen = image.decode_heap(Default::default()).expect("heap decodes");
    let probe = ptrs[7];
    assert_eq!(frozen.load(probe, 7).expect("load"), Word::Int(7));
    assert_eq!(
        process.heap().load(probe, 7).expect("load"),
        Word::Int(-1),
        "the live heap moved on"
    );
    println!(
        "frozen image holds the pre-mutation state ({frozen_blocks} blocks); \
         the live heap holds the new values"
    );

    // For contrast: the synchronous cost of the same checkpoint is one
    // full encode on the mutator thread.
    let t = std::time::Instant::now();
    let mut w = mojave::wire::WireWriter::new();
    process
        .heap()
        .encode_image_compressed(&mut w, CodecSet::all());
    println!(
        "synchronous encode of the same heap: {:?} for {} bytes on the wire \
         (the pipeline moved ~all of it off the mutator: pause {} µs vs encode {} µs)",
        t.elapsed(),
        w.len(),
        pipeline.pause_ns / 1_000,
        pipeline.encode_ns / 1_000,
    );
}
