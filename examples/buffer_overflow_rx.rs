//! The Rx-style recovery sketch from §2 of the paper: speculation turns a
//! buffer overflow into a rollback plus a retry along a different execution
//! path (allocating a larger buffer), instead of a crash.
//!
//! ```text
//! cargo run --example buffer_overflow_rx
//! ```

use mojave::core::{Process, ProcessConfig, RunOutcome};
use mojave::lang::compile_source;

const SOURCE: &str = r#"
    // Fill a buffer with n bytes.  The initial guess for the allocation is
    // too small; the bounds check in the write loop detects the overflow
    // before it corrupts memory and aborts the speculation, and the
    // re-entered path allocates a larger buffer and retries.
    int main() {
        int n = 100;
        int guess = 16;

        int filled = 0;
        int attempts = 0;
        int specid = speculate();
        // After an abort, speculate() returns 0 and we fall into the
        // recovery path with a bigger allocation.
        int capacity = guess;
        if (specid == 0) { capacity = n; }
        attempts = attempts + 1;

        buffer data = alloc_buffer(capacity);
        int ok = 1;
        for (int i = 0; i < n; i = i + 1) {
            if (i >= capacity) {
                // Overflow about to happen: roll back instead of crashing.
                if (specid > 0) { abort(specid); }
                ok = 0;
            }
            if (ok == 1) { poke(data, i, i % 256); }
        }
        if (specid > 0) { commit(specid); }

        // Count how many bytes actually landed.
        for (int i = 0; i < capacity; i = i + 1) {
            if (i < n) { filled = filled + 1; }
        }
        print_str("bytes filled:");
        print_int(filled);
        print_str("attempts:");
        print_int(attempts);
        return filled;
    }
"#;

fn main() {
    let program = compile_source(SOURCE).expect("program compiles");
    let mut process = Process::new(program, ProcessConfig::default()).expect("verifies");
    let outcome = process.run().expect("runs");
    for line in process.output() {
        println!("program output: {line}");
    }
    println!(
        "speculations: {}, rollbacks: {}",
        process.stats().speculations,
        process.stats().rollbacks
    );
    assert_eq!(outcome, RunOutcome::Exit(100));
    assert_eq!(
        process.stats().rollbacks,
        1,
        "the overflow triggered one rollback"
    );
    println!("the overflow was absorbed by a rollback and the retry completed the work");
}
