//! Figure 2 of the paper: the distributed grid computation with speculative
//! checkpointing and recovery from a node failure.
//!
//! Three MojaveC worker processes run a 2D Jacobi stencil on a simulated
//! cluster, exchanging borders through the message-passing interface,
//! committing their speculation and checkpointing every few steps.  One
//! worker is killed mid-run; its neighbours observe `MSG_ROLL`, roll back
//! their speculation, and the failed worker is resurrected from its latest
//! checkpoint.  The final field is verified against a sequential reference
//! run.
//!
//! ```text
//! cargo run --example grid_checkpointing
//! ```

use mojave::grid::{run_grid, FailurePlan, GridConfig};

fn main() {
    let config = GridConfig {
        workers: 3,
        rows_per_worker: 6,
        cols: 12,
        timesteps: 18,
        checkpoint_interval: 6,
    };

    println!("== fault-free run ==");
    let clean = run_grid(&config, None).expect("fault-free run succeeds");
    println!(
        "workers: {}, checkpoints written: {}, rollbacks: {}, wall time: {:?}",
        config.workers, clean.checkpoints, clean.rollbacks, clean.wall_time
    );
    println!(
        "checksums   {:?}\nreference   {:?}\nmax error   {:.4}",
        clean.worker_checksums,
        clean.reference_checksums,
        clean.max_error()
    );
    assert!(clean.is_correct());

    println!();
    println!("== run with a node failure after worker 1's first checkpoint ==");
    let plan = FailurePlan {
        victim: 1,
        after_checkpoints: 1,
    };
    let faulty = run_grid(&config, Some(plan)).expect("faulty run recovers");
    println!(
        "recovered: {}, checkpoints: {}, rollbacks: {}, wall time: {:?}",
        faulty.recovered_from_failure, faulty.checkpoints, faulty.rollbacks, faulty.wall_time
    );
    println!(
        "checksums   {:?}\nreference   {:?}\nmax error   {:.4}",
        faulty.worker_checksums,
        faulty.reference_checksums,
        faulty.max_error()
    );
    assert!(faulty.recovered_from_failure, "the failure was injected");
    assert!(
        faulty.is_correct(),
        "the recovered computation must still match the reference"
    );
    println!("failure was recovered from the checkpoint and the answer still matches");
}
