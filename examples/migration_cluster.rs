//! Whole-process migration between heterogeneous cluster nodes.
//!
//! A MojaveC program starts a long computation on node 0 (tagged `ia32-sim`),
//! migrates itself to node 1 (tagged `risc-sim`), and finishes there.  The
//! migration ships the FIR — not executable text — so the destination
//! verifies and recompiles the program before resuming it, and the process
//! itself cannot tell it moved (it is "indifferent to the machine it is
//! running on").
//!
//! ```text
//! cargo run --example migration_cluster
//! ```

use mojave::cluster::{Cluster, ClusterConfig, ClusterSink, MigrationDaemon};
use mojave::core::{Process, ProcessConfig, RunOutcome};
use mojave::lang::compile_source;

const SOURCE: &str = r#"
    int weigh(int n) {
        // A little work before and after the move.
        int acc = 0;
        for (int i = 1; i <= n; i = i + 1) { acc = acc + i * i; }
        return acc;
    }
    int main() {
        int before = weigh(50);
        print_str("computed the first half; migrating to node1");
        migrate("node1");
        // Execution resumes here on whichever machine accepted the process.
        int after = weigh(25);
        print_str("finished the second half");
        return before + after;
    }
"#;

fn main() {
    let program = compile_source(SOURCE).expect("program compiles");
    let cluster = Cluster::new(ClusterConfig::new(2));
    println!(
        "cluster: node0 = {}, node1 = {}",
        cluster.arch(0),
        cluster.arch(1)
    );

    // Start the process on node 0.
    let config = ProcessConfig {
        machine: mojave::core::Machine::new(cluster.arch(0)),
        ..ProcessConfig::default()
    };
    let mut source_process = Process::new(program, config)
        .expect("verifies")
        .with_sink(Box::new(ClusterSink::new(cluster.clone(), 0)));
    let outcome = source_process.run().expect("runs on node 0");
    println!("node0 outcome: {outcome:?}");
    for line in source_process.output() {
        println!("  node0 output: {line}");
    }
    assert_eq!(
        outcome,
        RunOutcome::MigratedAway {
            target: "node1".to_owned()
        }
    );

    // The migration daemon on node 1 verifies, recompiles and resumes it.
    let daemon = MigrationDaemon::new(cluster.clone(), 1);
    let results = daemon.run_pending(&ProcessConfig::default());
    assert_eq!(results.len(), 1);
    let final_outcome = results[0].as_ref().expect("resumed run succeeds");
    println!("node1 outcome: {final_outcome:?}");
    println!(
        "bytes moved over the simulated network: {}",
        cluster.bytes_transferred()
    );

    // 1² + … + 50² = 42925, 1² + … + 25² = 5525.
    assert_eq!(*final_outcome, RunOutcome::Exit(42_925 + 5_525));
    println!("the process finished on node1 with the same answer it would have computed locally");
}
