//! Quickstart: compile a MojaveC program that uses speculation and
//! checkpointing, run it, and resume the checkpoint it wrote.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mojave::core::{CheckpointStore, InMemorySink, Process, ProcessConfig, RunOutcome};
use mojave::lang::compile_source;

const SOURCE: &str = r#"
    // Sum the squares of 0..n, checkpointing halfway, with the whole loop
    // body guarded by a speculation that commits before the checkpoint.
    int main() {
        int n = 10;
        int total = 0;
        int specid = speculate();
        for (int i = 0; i < n; i = i + 1) {
            total = total + i * i;
            if (i == 5) {
                commit(specid);
                checkpoint("quickstart-halfway");
                specid = speculate();
            }
        }
        commit(specid);
        print_str("total:");
        print_int(total);
        return total;
    }
"#;

fn main() {
    // 1. Compile MojaveC → FIR.  The FIR is validated and type-checked.
    let program = compile_source(SOURCE).expect("program compiles");
    println!(
        "compiled: {} FIR functions, {} expression nodes",
        program.funs.len(),
        program.size()
    );

    // 2. Run it.  Checkpoints go to an in-memory store we keep a handle to.
    let store = CheckpointStore::new();
    let sink = InMemorySink::with_store(store.clone());
    let mut process = Process::new(program, ProcessConfig::default())
        .expect("program verifies")
        .with_sink(Box::new(sink));
    let outcome = process.run().expect("program runs");
    println!("first run finished with {outcome:?}");
    for line in process.output() {
        println!("  program output: {line}");
    }
    println!(
        "stats: {} speculations, {} commits, {} checkpoints",
        process.stats().speculations,
        process.stats().commits,
        process.stats().checkpoints
    );

    // 3. The checkpoint is a complete process image: resume it.
    let image = store.load("quickstart-halfway").expect("checkpoint exists");
    println!(
        "checkpoint image: {} bytes, packed on `{}`",
        image.byte_size(),
        image.source_arch
    );
    let mut resumed = Process::from_image(image, ProcessConfig::default()).expect("image verifies");
    let resumed_outcome = resumed.run().expect("resumed run completes");
    println!("resumed run finished with {resumed_outcome:?}");

    assert_eq!(outcome, RunOutcome::Exit(285));
    assert_eq!(resumed_outcome, RunOutcome::Exit(285));
    println!("quickstart OK");
}
