//! The observability layer end to end: a deterministic grid run with the
//! flight recorder at `Level::Trace`, the per-node metrics and event
//! streams it produces, and the Chrome trace-event export.
//!
//! The run injects a node failure, so the trace shows the full story:
//! checkpoint spans, speculation enter/commit, border messages, the
//! injected failure, and the victim's resurrection.  Tracing is free to
//! turn on — the replay digest of the traced run is asserted equal to an
//! untraced run of the same seed.
//!
//! ```text
//! cargo run --example tracing
//! ```
//!
//! Writes `mojave-trace.json`, loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use mojave::grid::{run_grid_with, FailurePlan, GridConfig, GridOptions};
use mojave::obs::{export_chrome_trace, export_text, validate_chrome_trace, Level};

fn main() {
    let config = GridConfig {
        workers: 4,
        rows_per_worker: 4,
        cols: 8,
        timesteps: 12,
        checkpoint_interval: 3,
    };
    let failure = Some(FailurePlan {
        victim: 2,
        after_checkpoints: 1,
    });
    let seed = 0x7124CE;

    println!("== traced deterministic run (4 workers, failure on node 2) ==");
    let traced = run_grid_with(
        &config,
        failure,
        GridOptions {
            seed: Some(seed),
            async_checkpoints: true,
            obs: Level::Trace,
            ..GridOptions::default()
        },
    )
    .expect("traced run succeeds");
    assert!(traced.is_correct(), "max error {}", traced.max_error());
    assert!(traced.recovered_from_failure);
    print!("{}", traced.summary());

    // Tracing is observation, not perturbation: the untraced run of the
    // same seed produces the identical replay digest.
    let untraced = run_grid_with(
        &config,
        failure,
        GridOptions {
            seed: Some(seed),
            async_checkpoints: true,
            obs: Level::Off,
            ..GridOptions::default()
        },
    )
    .expect("untraced run succeeds");
    assert_eq!(
        traced.replay_digest(),
        untraced.replay_digest(),
        "tracing must never perturb a deterministic run"
    );
    println!("replay digest identical with tracing on and off");

    // Per-node metrics, scraped from the run report.
    println!();
    println!("== per-node metrics ==");
    for report in &traced.node_obs {
        println!(
            "node {} ({} events, {} dropped):",
            report.node,
            report.events.len(),
            report.dropped
        );
        for line in report.metrics.to_text().lines().take(6) {
            println!("  {line}");
        }
    }

    // A peek at one node's event stream, in the text exporter's format.
    println!();
    println!("== node 2's first recorded events ==");
    let victim = traced
        .node_obs
        .iter()
        .find(|o| o.node == 2)
        .expect("victim report present");
    for line in export_text(&victim.events).lines().take(10) {
        println!("  {line}");
    }

    // Chrome trace-event export, validated before it is written.
    let events: Vec<mojave::obs::Event> = traced
        .node_obs
        .iter()
        .flat_map(|o| o.events.clone())
        .collect();
    let trace = export_chrome_trace(&events);
    let summary = validate_chrome_trace(&trace).expect("exported trace validates");
    assert_eq!(
        summary.begins, summary.ends,
        "checkpoint spans must balance"
    );
    assert!(summary.begins > 0);
    std::fs::write("mojave-trace.json", &trace).expect("trace written");
    println!();
    println!(
        "wrote mojave-trace.json: {} trace events ({} spans, {} instants, {} counter samples)",
        summary.events, summary.begins, summary.instants, summary.counters
    );
    println!("open it in chrome://tracing or https://ui.perfetto.dev");
}
