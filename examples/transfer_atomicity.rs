//! Figure 1 of the paper: the speculative `Transfer` function.
//!
//! Two "account" objects are swapped through fallible reads and writes.  The
//! speculative version separates error recovery from the transfer logic: any
//! failure aborts the speculation and the copy-on-write machinery undoes the
//! partial writes.  We run the transfer at increasing failure-injection rates
//! and show that the objects are never left in an inconsistent state.
//!
//! ```text
//! cargo run --example transfer_atomicity
//! ```

use mojave::core::{Process, ProcessConfig, RunOutcome};
use mojave::lang::compile_source;

fn transfer_program(fail_percent: u32, seed_rounds: u32) -> String {
    format!(
        r#"
        int transfer(int obj1, int obj2, int k) {{
            buffer buf1 = alloc_buffer(k);
            buffer buf2 = alloc_buffer(k);
            int specid = speculate();
            if (specid > 0) {{
                if (obj_read(obj1, buf1, k) != k) {{ abort(specid); }}
                if (obj_read(obj2, buf2, k) != k) {{ abort(specid); }}
                if (obj_write(obj1, buf2, k) != k) {{ abort(specid); }}
                if (obj_write(obj2, buf1, k) != k) {{ abort(specid); }}
                commit(specid);
                return 1;
            }}
            return 0;
        }}
        int main() {{
            int k = 32;
            int a = obj_create(k);
            int b = obj_create(k);
            buffer init = alloc_buffer(k);
            poke(init, 0, 11);
            obj_write(a, init, k);
            poke(init, 0, 22);
            obj_write(b, init, k);

            obj_set_fail_rate({fail_percent});
            int successes = 0;
            for (int round = 0; round < {seed_rounds}; round = round + 1) {{
                successes = successes + transfer(a, b, k);
            }}
            obj_set_fail_rate(0);

            // Consistency check: the two accounts must always hold the pair
            // {{11, 22}} in some order — a lost or duplicated value means a
            // partial transfer leaked through.
            buffer check = alloc_buffer(k);
            obj_read(a, check, k);
            int va = peek(check, 0);
            obj_read(b, check, k);
            int vb = peek(check, 0);
            int consistent = 0;
            if (va + vb == 33) {{ consistent = 1; }}
            return consistent * 1000 + successes;
        }}
        "#
    )
}

fn main() {
    println!("Figure 1 — speculative Transfer under failure injection");
    println!(
        "{:<14} {:>10} {:>12}",
        "fail rate", "successes", "consistent"
    );
    for fail_percent in [0u32, 10, 30, 60, 90] {
        let source = transfer_program(fail_percent, 40);
        let program = compile_source(&source).expect("transfer program compiles");
        let mut process = Process::new(program, ProcessConfig::default()).expect("verifies");
        let outcome = process.run().expect("runs");
        let RunOutcome::Exit(code) = outcome else {
            panic!("unexpected outcome {outcome:?}");
        };
        let consistent = code / 1000 == 1;
        let successes = code % 1000;
        println!(
            "{:<14} {:>10} {:>12}",
            format!("{fail_percent}%"),
            successes,
            consistent
        );
        assert!(
            consistent,
            "accounts left inconsistent at {fail_percent}% failure rate"
        );
    }
    println!("all runs kept the accounts consistent — aborts undid every partial transfer");
}
