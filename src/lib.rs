//! # mojave
//!
//! Umbrella crate for **Mojave-RS**, a Rust reproduction of *"The Mojave
//! Compiler: Providing Language Primitives for Whole-Process Migration and
//! Speculation for Distributed Applications"* (Smith, Țăpuș, Hickey —
//! IPDPS 2007).
//!
//! This crate simply re-exports the workspace members so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`codec`] — slab compression for checkpoint and migration images,
//! * [`wire`] — architecture-independent binary encoding for images,
//! * [`fir`] — the semi-functional intermediate representation,
//! * [`heap`] — runtime heap, pointer table and garbage collector,
//! * [`core`] — the runtime: interpreter, bytecode backend, speculation
//!   manager and migration engine (the paper's primary contribution),
//! * [`lang`] — the MojaveC front end,
//! * [`cluster`] — the simulated distributed environment,
//! * [`runtime`] — the asynchronous checkpoint/migration pipeline
//!   (zero-pause COW heap snapshots encoded and delivered off-thread),
//! * [`grid`] — the canonical grid computation application,
//! * [`obs`] — the observability layer: deterministic flight recorder,
//!   metrics registry and trace exporters.
//!
//! ## Quickstart
//!
//! Compile and run a MojaveC program that uses speculation:
//!
//! ```
//! use mojave::lang::compile_source;
//! use mojave::core::{Process, RunOutcome};
//!
//! let source = r#"
//!     int main() {
//!         int id = speculate();
//!         if (id > 0) {
//!             commit(id);
//!             return 41 + 1;
//!         }
//!         return 0;
//!     }
//! "#;
//! let program = compile_source(source).expect("compiles");
//! let mut process = Process::from_program(program);
//! let outcome = process.run().expect("runs");
//! assert_eq!(outcome, RunOutcome::Exit(42));
//! ```

pub use mojave_cluster as cluster;
pub use mojave_codec as codec;
pub use mojave_core as core;
pub use mojave_fir as fir;
pub use mojave_grid as grid;
pub use mojave_heap as heap;
pub use mojave_lang as lang;
pub use mojave_obs as obs;
pub use mojave_runtime as runtime;
pub use mojave_wire as wire;
