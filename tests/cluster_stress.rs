//! Large-cluster stress harness: seeded deterministic grid runs at 64+
//! nodes with mid-run failure injection and resurrection, asserted to
//! replay **bit-identically** from their seed.
//!
//! The non-ignored test is the tier-1 guarantee (one 64-node replay pair);
//! the `#[ignore]`d tests are the CI `stress` job's 3-seed matrix and a
//! contention sweep, run on the nightly cron or the `stress` PR label
//! (`cargo test --release --test cluster_stress -- --ignored`).

use mojave::cluster::{Cluster, ClusterConfig};
use mojave::grid::{
    run_grid_deterministic, run_grid_deterministic_with_codec, run_grid_with, FailurePlan,
    GridConfig, GridOptions, GridReport,
};
use mojave::wire::CodecId;

fn stress_config(workers: usize) -> GridConfig {
    GridConfig {
        workers,
        rows_per_worker: 2,
        cols: 4,
        timesteps: 6,
        checkpoint_interval: 2,
    }
}

/// Run the same seeded configuration twice and insist on a bit-identical
/// replay digest, returning the first report for further assertions.
fn assert_replays_bit_identically(
    config: &GridConfig,
    failure: Option<FailurePlan>,
    seed: u64,
) -> GridReport {
    let first = run_grid_deterministic(config, failure, seed).expect("first run succeeds");
    let second = run_grid_deterministic(config, failure, seed).expect("replay succeeds");
    assert_eq!(
        first.replay_digest(),
        second.replay_digest(),
        "seed {seed:#x} did not replay bit-identically"
    );
    assert!(
        first.is_correct(),
        "seed {seed:#x}: checksums diverge from the reference (max error {})",
        first.max_error()
    );
    first
}

/// The headline guarantee: a 64-node grid run with a mid-run failure and
/// resurrection replays bit-identically from a fixed seed.
#[test]
fn sixty_four_node_failure_run_replays_bit_identically() {
    let config = stress_config(64);
    let failure = Some(FailurePlan {
        victim: 23,
        after_checkpoints: 1,
    });
    let report = assert_replays_bit_identically(&config, failure, 0x0A0_7A7E);
    assert!(report.recovered_from_failure);
    // Exactly the victim's two neighbours roll back, once each —
    // deterministic-mode failure observation is data-driven, not timed.
    assert_eq!(report.rollbacks, 2);
    // Every worker checkpoints timesteps/interval times; the victim's
    // resurrected incarnation re-writes its post-failure checkpoints.
    assert!(report.checkpoints >= (64 * 6 / 2) as u64);
}

/// Wire v5 acceptance: a deterministic 64-node grid replay with
/// **compressed** checkpoints (the production default — slab codecs
/// auto-chosen per image) reproduces the same `replay_digest` as the
/// identical run with compression disabled.  The codec moves bytes, never
/// control flow; and it demonstrably moves them — the compressed run
/// stores strictly fewer checkpoint bytes.
#[test]
fn sixty_four_node_compressed_checkpoints_replay_like_raw() {
    let config = stress_config(64);
    let failure = Some(FailurePlan {
        victim: 40,
        after_checkpoints: 1,
    });
    let compressed = run_grid_deterministic_with_codec(&config, failure, 0xC0DEC5, None)
        .expect("compressed run succeeds");
    let raw = run_grid_deterministic_with_codec(&config, failure, 0xC0DEC5, Some(CodecId::Raw))
        .expect("raw run succeeds");
    assert!(compressed.is_correct() && raw.is_correct());
    assert!(compressed.recovered_from_failure);
    assert_eq!(
        compressed.replay_digest(),
        raw.replay_digest(),
        "slab compression must not perturb the replay"
    );
    assert!(
        compressed.checkpoint_stored_bytes < raw.checkpoint_stored_bytes,
        "compressed {} vs raw {} stored bytes",
        compressed.checkpoint_stored_bytes,
        raw.checkpoint_stored_bytes
    );
}

/// Different seeds drive different virtual-time schedules but identical
/// physics: the checksums must match the reference under every seed.
#[test]
fn failure_free_sixty_four_node_run_is_seed_stable() {
    let config = stress_config(64);
    let a = assert_replays_bit_identically(&config, None, 1);
    assert!(!a.recovered_from_failure);
    assert_eq!(a.rollbacks, 0, "no failure, no rollbacks in det mode");
}

/// CI stress matrix: three seeds, each replayed twice, with failure
/// injection and resurrection mid-run.  Ignored by default; the CI
/// `stress` job runs it on the nightly cron or the `stress` label.
#[test]
#[ignore = "large-cluster stress matrix; run via the CI stress job or --ignored"]
fn stress_matrix_three_seeds_with_failure() {
    for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
        let config = stress_config(64);
        let victim = (seed % 62 + 1) as usize; // interior node, seed-derived
        let report = assert_replays_bit_identically(
            &config,
            Some(FailurePlan {
                victim,
                after_checkpoints: 1,
            }),
            seed,
        );
        assert!(report.recovered_from_failure, "seed {seed:#x}");
        assert_eq!(report.rollbacks, 2, "seed {seed:#x}");
    }
}

/// CI `stress` async-replay leg: a 64-node deterministic grid run with
/// mid-run failure produces an **identical replay digest** with the
/// asynchronous checkpoint pipeline enabled and disabled, and the async
/// run replays against itself bit-identically.  The pipeline's drain
/// barriers pin every checkpoint side effect (store write, network
/// accounting, scheduled failure injection) to the synchronous points.
#[test]
#[ignore = "large-cluster stress; run via the CI stress job or --ignored"]
fn sixty_four_node_async_replay_digest_matches_sync() {
    let config = stress_config(64);
    let failure = Some(FailurePlan {
        victim: 40,
        after_checkpoints: 1,
    });
    let seed = 0xA51D_1CE5u64;
    let sync = run_grid_with(
        &config,
        failure,
        GridOptions {
            seed: Some(seed),
            ..GridOptions::default()
        },
    )
    .expect("sync run succeeds");
    let async_options = GridOptions {
        seed: Some(seed),
        async_checkpoints: true,
        ..GridOptions::default()
    };
    let asynchronous = run_grid_with(&config, failure, async_options).expect("async run succeeds");
    let replay = run_grid_with(&config, failure, async_options).expect("async replay succeeds");

    assert!(sync.is_correct() && asynchronous.is_correct());
    assert!(asynchronous.recovered_from_failure);
    assert_eq!(
        sync.replay_digest(),
        asynchronous.replay_digest(),
        "async checkpoints changed the 64-node replay digest"
    );
    assert_eq!(
        asynchronous.replay_digest(),
        replay.replay_digest(),
        "async run did not replay bit-identically against itself"
    );
    assert_eq!(
        asynchronous.checkpoint_stored_bytes,
        replay.checkpoint_stored_bytes
    );
    // The pipeline actually ran: deltas flowed through it and both time
    // counters were accounted.
    assert!(asynchronous.delta_checkpoints > 0);
    assert!(asynchronous.checkpoint_pause_ns > 0);
    assert!(asynchronous.checkpoint_encode_ns > 0);
}

/// CI `stress` observability leg: at 64 nodes with failure injection,
/// flight-recorder tracing neither perturbs the replay digest nor is
/// itself nondeterministic — two traced runs emit byte-identical event
/// streams (virtual-clock timestamps included), and the traced digest
/// matches the untraced one.
#[test]
#[ignore = "large-cluster stress; run via the CI stress job or --ignored"]
fn sixty_four_node_traced_run_replays_with_identical_event_streams() {
    let config = stress_config(64);
    let failure = Some(FailurePlan {
        victim: 17,
        after_checkpoints: 1,
    });
    let seed = 0xB5E64u64;
    let with_obs = |obs| GridOptions {
        seed: Some(seed),
        obs,
        ..GridOptions::default()
    };
    let untraced =
        run_grid_with(&config, failure, with_obs(mojave::obs::Level::Off)).expect("untraced run");
    let a = run_grid_with(&config, failure, with_obs(mojave::obs::Level::Trace))
        .expect("traced run succeeds");
    let b = run_grid_with(&config, failure, with_obs(mojave::obs::Level::Trace))
        .expect("traced replay succeeds");
    assert_eq!(untraced.replay_digest(), a.replay_digest());
    assert_eq!(a.replay_digest(), b.replay_digest());
    // 65 reports: 64 workers plus the victim's resurrected incarnation.
    assert_eq!(a.node_obs.len(), 65);
    let stream = |report: &GridReport| {
        let mut bytes = Vec::new();
        for obs in &report.node_obs {
            for event in &obs.events {
                event.encode(&mut bytes);
            }
        }
        bytes
    };
    let stream_a = stream(&a);
    assert!(!stream_a.is_empty());
    assert_eq!(stream_a, stream(&b), "64-node event streams diverged");
}

/// 128 nodes: double the shard count, same guarantees.
#[test]
#[ignore = "large-cluster stress; run via the CI stress job or --ignored"]
fn one_hundred_twenty_eight_node_run_replays() {
    let config = stress_config(128);
    let report = assert_replays_bit_identically(
        &config,
        Some(FailurePlan {
            victim: 64,
            after_checkpoints: 1,
        }),
        0xBEEF,
    );
    assert!(report.recovered_from_failure);
}

/// Shard scaling sanity check outside the grid app: a storm of disjoint
/// sends lands every message on the right shard and the per-shard counters
/// sum exactly to the global ones.
#[test]
#[ignore = "large-cluster stress; run via the CI stress job or --ignored"]
fn disjoint_pair_storm_keeps_per_shard_counters_exact() {
    let nodes = 256;
    let per_pair = 200;
    let cluster = Cluster::new(ClusterConfig::homogeneous(nodes, "ia32-sim"));
    let handles: Vec<_> = (0..nodes / 2)
        .map(|pair| {
            let cluster = cluster.clone();
            std::thread::spawn(move || {
                let (a, b) = (2 * pair, 2 * pair + 1);
                for i in 0..per_pair {
                    cluster.send(a, b, i as i64 % 16, vec![i as f64]);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(cluster.messages_sent(), (nodes / 2 * per_pair) as u64);
    for pair in 0..nodes / 2 {
        assert_eq!(cluster.node_messages_received(2 * pair), 0);
        assert_eq!(
            cluster.node_messages_received(2 * pair + 1),
            per_pair as u64
        );
    }
}
