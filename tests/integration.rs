//! Workspace-level integration tests spanning the compiler, the runtime, the
//! cluster and the grid application.

use mojave::cluster::{Cluster, ClusterConfig, ClusterSink, MigrationDaemon};
use mojave::core::{BackendKind, Process, ProcessConfig, RunOutcome};
use mojave::grid::{run_grid, FailurePlan, GridConfig};
use mojave::lang::compile_source;

/// Figure 2 end to end with a node failure: the victim is resurrected from
/// its checkpoint, the neighbours roll back their speculation, and the final
/// field matches the sequential reference.
#[test]
fn grid_recovers_from_a_node_failure() {
    let config = GridConfig {
        workers: 3,
        rows_per_worker: 4,
        cols: 8,
        timesteps: 12,
        checkpoint_interval: 4,
    };
    let plan = FailurePlan {
        victim: 1,
        after_checkpoints: 1,
    };
    let report = run_grid(&config, Some(plan)).expect("the run recovers");
    assert!(report.recovered_from_failure);
    assert!(
        report.is_correct(),
        "checksums {:?} vs reference {:?} (max error {})",
        report.worker_checksums,
        report.reference_checksums,
        report.max_error()
    );
    // Checkpoints from before and after the failure are all in the store.
    assert!(report.checkpoints >= (config.workers * 2) as u64);
}

/// A MojaveC process migrates across two nodes of different simulated
/// architectures and produces the same answer as a purely local run.
#[test]
fn migration_is_transparent_to_the_program() {
    let source = r#"
        int work(int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
            return acc;
        }
        int main() {
            int first = work(100);
            migrate("node1");
            int second = work(50);
            return first + second;
        }
    "#;
    let program = compile_source(source).unwrap();

    // Local run (migration fails: no cluster): baseline answer.
    let mut local = Process::new(program.clone(), ProcessConfig::default()).unwrap();
    let RunOutcome::Exit(expected) = local.run().unwrap() else {
        panic!("local run must exit");
    };

    // Distributed run: node0 → node1 (different architecture tags).
    let cluster = Cluster::new(ClusterConfig::new(2));
    let mut source_process = Process::new(program, ProcessConfig::default())
        .unwrap()
        .with_sink(Box::new(ClusterSink::new(cluster.clone(), 0)));
    assert_eq!(
        source_process.run().unwrap(),
        RunOutcome::MigratedAway {
            target: "node1".to_owned()
        }
    );
    assert_ne!(cluster.arch(0), cluster.arch(1), "nodes are heterogeneous");
    let daemon = MigrationDaemon::new(cluster, 1);
    let results = daemon.run_pending(&ProcessConfig::default());
    assert_eq!(results.len(), 1);
    assert_eq!(*results[0].as_ref().unwrap(), RunOutcome::Exit(expected));
}

/// Checkpoints written by the compiled program are complete executable
/// images: resuming any of them reproduces the same final answer, on either
/// backend.
#[test]
fn every_checkpoint_resumes_to_the_same_answer() {
    let source = r#"
        int main() {
            int total = 0;
            for (int step = 1; step <= 9; step = step + 1) {
                total = total + step * step;
                if (step % 3 == 0) {
                    checkpoint(str_concat("ck-", int_to_str(step)));
                }
            }
            return total;
        }
    "#;
    let program = compile_source(source).unwrap();
    let store = mojave::core::CheckpointStore::new();
    let sink = mojave::core::InMemorySink::with_store(store.clone());
    let mut p = Process::new(program, ProcessConfig::default())
        .unwrap()
        .with_sink(Box::new(sink));
    let RunOutcome::Exit(expected) = p.run().unwrap() else {
        panic!("run must exit");
    };
    assert_eq!(store.len(), 3);

    for name in store.names() {
        for backend in [BackendKind::Bytecode, BackendKind::Interp] {
            let image = store.load(&name).unwrap();
            let config = ProcessConfig {
                backend,
                ..ProcessConfig::default()
            };
            let mut resumed = Process::from_image(image, config).unwrap();
            assert_eq!(
                resumed.run().unwrap(),
                RunOutcome::Exit(expected),
                "checkpoint {name} on {backend:?}"
            );
        }
    }
}

/// The speculative Transfer keeps its accounts consistent under heavy
/// failure injection while a plain (non-speculative) sequence of the same
/// operations corrupts them — the motivation for Figure 1.
#[test]
fn speculative_transfer_beats_manual_recovery() {
    let speculative = r#"
        int transfer(int a, int b, int k) {
            buffer b1 = alloc_buffer(k);
            buffer b2 = alloc_buffer(k);
            int id = speculate();
            if (id > 0) {
                if (obj_read(a, b1, k) != k) { abort(id); }
                if (obj_read(b, b2, k) != k) { abort(id); }
                if (obj_write(a, b2, k) != k) { abort(id); }
                if (obj_write(b, b1, k) != k) { abort(id); }
                commit(id);
                return 1;
            }
            return 0;
        }
        int main() {
            int a = obj_create(8);
            int b = obj_create(8);
            buffer init = alloc_buffer(8);
            poke(init, 0, 11);
            obj_write(a, init, 8);
            poke(init, 0, 22);
            obj_write(b, init, 8);
            obj_set_fail_rate(60);
            for (int i = 0; i < 20; i = i + 1) { transfer(a, b, 8); }
            obj_set_fail_rate(0);
            buffer check = alloc_buffer(8);
            obj_read(a, check, 8);
            int va = peek(check, 0);
            obj_read(b, check, 8);
            int vb = peek(check, 0);
            if (va + vb == 33) { return 1; }
            return 0;
        }
    "#;
    let program = compile_source(speculative).unwrap();
    let mut p = Process::new(program, ProcessConfig::default()).unwrap();
    assert_eq!(
        p.run().unwrap(),
        RunOutcome::Exit(1),
        "speculative version stays consistent"
    );

    // The traditional version from the top half of Figure 1: in-line error
    // recovery with a compensating write.  A partial write that the
    // compensation cannot undo leaves the accounts inconsistent.
    let traditional = r#"
        int transfer(int a, int b, int k) {
            buffer b1 = alloc_buffer(k);
            buffer b2 = alloc_buffer(k);
            if (obj_read(a, b1, k) != k) { return 0; }
            if (obj_read(b, b2, k) != k) { return 0; }
            if (obj_write(a, b2, k) != k) { return 0; }
            if (obj_write(b, b1, k) != k) {
                // Undo the first write; if this also fails the state is
                // inconsistent and there is nothing the code can do.
                obj_write(a, b1, k);
                return 0;
            }
            return 1;
        }
        int main() {
            int a = obj_create(8);
            int b = obj_create(8);
            buffer init = alloc_buffer(8);
            poke(init, 0, 11);
            obj_write(a, init, 8);
            poke(init, 0, 22);
            obj_write(b, init, 8);
            obj_set_fail_rate(60);
            for (int i = 0; i < 20; i = i + 1) { transfer(a, b, 8); }
            obj_set_fail_rate(0);
            buffer check = alloc_buffer(8);
            obj_read(a, check, 8);
            int va = peek(check, 0);
            obj_read(b, check, 8);
            int vb = peek(check, 0);
            if (va + vb == 33) { return 1; }
            return 0;
        }
    "#;
    let program = compile_source(traditional).unwrap();
    let mut p = Process::new(program, ProcessConfig::default()).unwrap();
    let RunOutcome::Exit(consistent) = p.run().unwrap() else {
        panic!("traditional run must exit");
    };
    assert_eq!(
        consistent, 0,
        "with partial writes the hand-rolled recovery leaves the accounts inconsistent"
    );
}

/// Binary migration is faster to resume but refuses to cross architectures;
/// FIR migration works everywhere.  (The quantitative comparison is in the
/// benchmark harness; this checks the functional behaviour.)
#[test]
fn binary_vs_fir_migration_behaviour() {
    let source = r#"
        int main() {
            suspend("stopped");
            return 99;
        }
    "#;
    let program = compile_source(source).unwrap();
    let store = mojave::core::CheckpointStore::new();

    for (binary, arch_ok) in [(false, true), (true, true), (true, false)] {
        let sink = mojave::core::InMemorySink::with_store(store.clone());
        let config = ProcessConfig {
            binary_migration: binary,
            ..ProcessConfig::default()
        };
        let mut p = Process::new(program.clone(), config)
            .unwrap()
            .with_sink(Box::new(sink));
        assert!(matches!(p.run().unwrap(), RunOutcome::Suspended { .. }));
        let image = store.load("stopped").unwrap();
        assert_eq!(image.code.is_binary(), binary);

        let dest = ProcessConfig {
            machine: if arch_ok {
                mojave::core::Machine::ia32()
            } else {
                mojave::core::Machine::risc()
            },
            ..ProcessConfig::default()
        };
        let resumed = Process::from_image(image, dest);
        if binary && !arch_ok {
            assert!(
                resumed.is_err(),
                "binary images must not cross architectures"
            );
        } else {
            assert_eq!(resumed.unwrap().run().unwrap(), RunOutcome::Exit(99));
        }
    }
}
