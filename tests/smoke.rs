//! Workspace smoke test: a tiny MojaveC program travels the whole stack —
//! front end → FIR → runtime → wire image — entirely through the umbrella
//! crate's re-exports, so a broken `pub use` in `src/lib.rs` fails here even
//! when every member crate's own tests still pass.

use mojave::core::{BackendKind, Process, ProcessConfig, RunOutcome};
use mojave::lang::compile_source;

const SOURCE: &str = r#"
    // Speculate, mutate, roll back on the failure arm, then recompute the
    // answer for real: exercises the paper's enter/commit primitives plus
    // plain arithmetic and control flow.
    int main() {
        int acc = 0;
        int id = speculate();
        if (id > 0) {
            commit(id);
            for (int i = 1; i <= 4; i = i + 1) {
                acc = acc + i * i;
            }
            return acc + 12;
        }
        return 0;
    }
"#;

/// 1 + 4 + 9 + 16 + 12.
const EXPECTED: i64 = 42;

#[test]
fn compile_and_run_through_umbrella_reexports() {
    let program = compile_source(SOURCE).expect("MojaveC source compiles to FIR");
    assert!(program.size() > 0, "compiled program has FIR nodes");

    let mut process = Process::from_program(program);
    let outcome = process.run().expect("program runs to completion");
    assert_eq!(outcome, RunOutcome::Exit(EXPECTED));
    assert!(
        process.stats().speculations >= 1,
        "speculate() was executed"
    );
    assert!(process.stats().commits >= 1, "commit() was executed");
}

#[test]
fn both_backends_agree_on_the_result() {
    for backend in [BackendKind::Interp, BackendKind::Bytecode] {
        let program = compile_source(SOURCE).expect("source compiles");
        let config = ProcessConfig {
            backend,
            ..ProcessConfig::default()
        };
        let mut process = Process::new(program, config).expect("program verifies");
        let outcome = process.run().expect("program runs");
        assert_eq!(outcome, RunOutcome::Exit(EXPECTED), "backend {backend:?}");
    }
}

#[test]
fn checkpoint_image_roundtrips_through_the_wire_layer() {
    use mojave::core::{CheckpointStore, InMemorySink, MigrationImage};

    let source = r#"
        int main() {
            int acc = 0;
            for (int i = 1; i <= 4; i = i + 1) {
                acc = acc + i * i;
                if (i == 2) { checkpoint("smoke-mid"); }
            }
            return acc + 12;
        }
    "#;
    let program = compile_source(source).expect("source compiles");
    let store = CheckpointStore::new();
    let mut process = Process::new(program, ProcessConfig::default())
        .expect("program verifies")
        .with_sink(Box::new(InMemorySink::with_store(store.clone())));
    let outcome = process.run().expect("first run completes");
    assert_eq!(outcome, RunOutcome::Exit(EXPECTED));

    // Re-encode the checkpoint through the wire layer by hand, so the
    // umbrella's `wire`-facing re-exports are exercised too.
    let image = store.load("smoke-mid").expect("checkpoint was written");
    let bytes = image.to_bytes();
    assert!(!bytes.is_empty());
    let decoded = MigrationImage::from_bytes(&bytes).expect("image decodes");

    let mut resumed =
        Process::from_image(decoded, ProcessConfig::default()).expect("resumed image verifies");
    let resumed_outcome = resumed.run().expect("resumed process runs");
    assert_eq!(resumed_outcome, RunOutcome::Exit(EXPECTED));
}
