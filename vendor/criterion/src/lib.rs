//! A minimal, offline stand-in for the [Criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the subset of Criterion's API that the
//! benches under `crates/bench/benches/` use: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_function` /
//! `bench_with_input`, `iter` / `iter_batched`, throughput annotations and
//! `black_box`. It measures wall-clock time with `std::time::Instant`,
//! runs a warm-up pass plus `sample_size` timed samples, and reports the
//! median per-iteration time — enough to compare the paper's experiments
//! against each other, without Criterion's statistical machinery.
//!
//! Swapping the real Criterion back in is a one-line change in the
//! workspace manifest; no bench source needs to change.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`]: an identity function that the
/// optimiser treats as opaque.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost across iterations. The shim
/// runs one setup per routine invocation regardless of the variant, so the
/// variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; setup is cheap relative to the routine.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per sample.
    PerIteration,
}

/// Throughput annotation for a benchmark, reported alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the timed samples, filled in by `iter*`.
    measured: Option<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            measured: None,
        }
    }

    /// Time `routine` over `samples` timed samples (after a calibrating
    /// warm-up) and record the median per-iteration time.
    ///
    /// Each timed sample runs the routine in a loop sized so the timed
    /// region is at least ~10 µs, then divides — otherwise nanosecond-scale
    /// routines (pointer-table lookups, speculation enters) would measure
    /// `Instant` overhead instead of themselves.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let calibration = Instant::now();
        black_box(routine());
        let once = calibration.elapsed();
        let iters = iters_for(once);
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(start.elapsed() / iters);
        }
        self.record(times);
    }

    /// Time `routine` on fresh inputs produced by `setup`; only the routine
    /// is inside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed());
        }
        self.record(times);
    }

    /// Like [`Bencher::iter_batched`] but passes the input by mutable
    /// reference so the routine can reuse it.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut warm = setup();
        black_box(routine(&mut warm));
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            times.push(start.elapsed());
        }
        self.record(times);
    }

    fn record(&mut self, mut times: Vec<Duration>) {
        times.sort_unstable();
        self.measured = times.get(times.len() / 2).copied();
    }
}

/// A named collection of related benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's total time is
    /// `sample_size` iterations, not a time budget.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark (skipped when a CLI filter excludes it).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if !self.selected(&id) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        if !self.selected(&id) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Print the group's trailing newline. (The real Criterion finalises
    /// reports here; the shim prints as it goes.)
    pub fn finish(self) {}

    fn selected(&self, id: &BenchmarkId) -> bool {
        match &self.criterion.filter {
            Some(filter) => format!("{}/{}", self.name, id).contains(filter.as_str()),
            None => true,
        }
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let median = match bencher.measured {
            Some(t) => t,
            None => return,
        };
        let mut line = format!(
            "{}/{}: median {} over {} samples",
            self.name,
            id,
            fmt_duration(median),
            self.sample_size
        );
        if let Some(Throughput::Bytes(bytes)) = self.throughput {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                let mibps = bytes as f64 / secs / (1024.0 * 1024.0);
                line.push_str(&format!("  ({mibps:.1} MiB/s)"));
            }
        }
        println!("{line}");
    }
}

/// Iterations per timed sample: enough that the timed region is ~10 µs even
/// for nanosecond routines, 1 for routines already ≥ 10 µs, capped so a
/// mis-calibrated fast first call cannot produce an hours-long sample.
fn iters_for(once: Duration) -> u32 {
    const TARGET: Duration = Duration::from_micros(10);
    if once >= TARGET {
        return 1;
    }
    let once_nanos = once.as_nanos().max(1) as u64;
    (TARGET.as_nanos() as u64 / once_nanos).clamp(1, 100_000) as u32
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", d.as_secs_f64())
    }
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Flags forwarded by cargo (`--bench`, `--nocapture`, ...) are
        // ignored; the first non-flag argument — what the user typed after
        // `cargo bench -- ` — is a substring filter on the full
        // `group/benchmark` name, like the real Criterion's.
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Criterion {
            default_sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            throughput: None,
            criterion: self,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id.to_owned());
        group.bench_function("single", f);
        group.finish();
        self
    }
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a bench binary (requires `harness = false`),
/// mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // One calibrating warm-up plus three timed samples of >= 1
        // iteration each (fast routines loop many times per sample).
        assert!(runs >= 4, "runs={runs}");
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut setups = 0usize;
        group.bench_with_input(BenchmarkId::new("batched", 1), &1, |b, _| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 3);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", "10KiB").to_string(), "f/10KiB");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
