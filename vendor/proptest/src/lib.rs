//! A minimal, offline stand-in for [proptest](https://docs.rs/proptest).
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements the subset of proptest's API that the property
//! tests under `crates/wire/tests/` and `crates/heap/tests/` use:
//!
//! * the [`proptest!`] macro (`fn name(x in strategy, ...) { body }`),
//! * [`strategy::Strategy`] with `prop_map`, integer-range / tuple / string-pattern
//!   strategies, [`prelude::any`], [`prop_oneof!`] and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Generation is driven by a deterministic SplitMix64 stream seeded from the
//! test's name, so failures reproduce exactly across runs and machines.
//! There is **no shrinking**: a failing case reports the seed and iteration
//! instead. The number of cases per test defaults to 64 and can be raised
//! with the `PROPTEST_CASES` environment variable.
//!
//! Swapping the real proptest back in is a one-line change in the workspace
//! manifest; no test source needs to change.

pub mod strategy;

pub mod collection {
    //! Strategies for collections (the `vec` combinator).

    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// lies in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The driver loop behind the [`proptest!`](crate::proptest) macro.

    pub use crate::strategy::TestRng;

    /// Number of generated cases per property, from `PROPTEST_CASES`
    /// (default 64).
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests: each `arg in strategy` binding is regenerated for
/// every case and the body re-run.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let run = || -> () { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest: property `{}` failed on case {case} of {cases} \
                             (seeded from the test name; rerun reproduces it)",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property (maps to [`assert!`]).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (maps to [`assert_eq!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Pick uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 3usize..17, w in -5i64..5) {
            prop_assert!((3..17).contains(&v));
            prop_assert!((-5..5).contains(&w));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![
                (0usize..4).prop_map(|n| n * 10),
                (0usize..4).prop_map(|n| n + 100),
            ]
        ) {
            prop_assert!(x < 40 || (100..104).contains(&x));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn string_patterns_generate_utf8_in_length_bounds() {
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..200 {
            let s = Strategy::generate(&".{0,32}", &mut rng);
            assert!(s.chars().count() <= 32);
            let any_len = Strategy::generate(&".*", &mut rng);
            assert!(any_len.chars().count() <= 64);
        }
    }
}
