//! A minimal, offline stand-in for [proptest](https://docs.rs/proptest).
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements the subset of proptest's API that the property
//! tests under `crates/wire/tests/` and `crates/heap/tests/` use:
//!
//! * the [`proptest!`] macro (`fn name(x in strategy, ...) { body }`),
//! * [`strategy::Strategy`] with `prop_map`, integer-range / tuple / string-pattern
//!   strategies, [`prelude::any`], [`prop_oneof!`] and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Generation is driven by a deterministic SplitMix64 stream seeded from the
//! test's name, so failures reproduce exactly across runs and machines.
//! Failing cases are **shrunk**: integer strategies walk toward the range
//! start (binary search plus single steps), vector strategies drop and
//! simplify elements, tuples shrink one component at a time, and the
//! greedy descent in [`test_runner::shrink_to_minimal`] stops at a local
//! minimum (budgeted, so it always terminates).  Non-invertible
//! combinators (`prop_map`, `prop_oneof!`) report their failing case
//! unshrunk.  The number of cases per test defaults to 64 and can be
//! raised with the `PROPTEST_CASES` environment variable.
//!
//! Swapping the real proptest back in is a one-line change in the workspace
//! manifest; no test source needs to change.

pub mod strategy;

pub mod collection {
    //! Strategies for collections (the `vec` combinator).

    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// lies in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        /// Shorter first (truncate-half, then drop each element), then
        /// element-wise simplification at the final length — all candidates
        /// stay within the strategy's length bounds.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let min_len = self.len.start;
            let mut out = Vec::new();
            if value.len() > min_len {
                let half = min_len + (value.len() - min_len) / 2;
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                for i in 0..value.len() {
                    let mut shorter = value.clone();
                    shorter.remove(i);
                    out.push(shorter);
                }
            }
            for (i, element) in value.iter().enumerate() {
                for candidate in self.element.shrink(element) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod test_runner {
    //! The driver loop behind the [`proptest!`](crate::proptest) macro:
    //! case generation, failure detection and greedy shrinking.

    use crate::strategy::Strategy;
    pub use crate::strategy::TestRng;

    /// Number of generated cases per property, from `PROPTEST_CASES`
    /// (default 64).
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Cap on shrink-candidate evaluations per failure, so cyclic or
    /// enormous candidate sets can never hang a test run.
    const SHRINK_BUDGET: usize = 4_096;

    /// Run `f` with a no-op panic hook installed, restoring the previous
    /// hook afterwards (panic-safe via a drop guard).  The search-and-shrink
    /// phase evaluates the body on many failing candidates under
    /// `catch_unwind`; without this, every accepted descent step would
    /// print a full panic trace and bury the minimal-case report.  The hook
    /// is process-global, so a concurrently *failing* other test loses its
    /// panic message for the overlap — its failure is still reported by the
    /// harness, and the suppression only lasts while a property is already
    /// failing.
    // `PanicHookInfo` is the 1.81 rename of the hook argument type; the
    // workspace MSRV predates it, but the pinned `stable` toolchain (CI and
    // the baked image) is far newer, so the rename is the portable spelling.
    #[allow(clippy::incompatible_msrv)]
    pub fn with_silent_panics<R>(f: impl FnOnce() -> R) -> R {
        type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
        struct RestoreHook(Option<PanicHook>);
        impl Drop for RestoreHook {
            fn drop(&mut self) {
                if let Some(hook) = self.0.take() {
                    std::panic::set_hook(hook);
                }
            }
        }
        let guard = RestoreHook(Some(std::panic::take_hook()));
        std::panic::set_hook(Box::new(|_| {}));
        let result = f();
        drop(guard);
        result
    }

    /// Run `cases` generated inputs through `test` (`true` = property
    /// holds).  On the first failing input, greedily shrink it and return
    /// `(case_index, minimal_failing_value)`; `None` means every case
    /// passed.  Deterministic: the RNG is seeded from `name`.
    pub fn find_failure<S, F>(
        strategy: &S,
        name: &str,
        cases: usize,
        test: F,
    ) -> Option<(usize, S::Value)>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        let mut rng = TestRng::deterministic(name);
        for case in 0..cases {
            let value = strategy.generate(&mut rng);
            if !test(&value) {
                return Some((case, shrink_to_minimal(strategy, value, test)));
            }
        }
        None
    }

    /// Greedy descent: repeatedly replace the failing value with its first
    /// still-failing shrink candidate until no candidate fails (a local
    /// minimum) or the budget runs out.
    pub fn shrink_to_minimal<S, F>(strategy: &S, mut failing: S::Value, test: F) -> S::Value
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        let mut budget = SHRINK_BUDGET;
        'descend: loop {
            for candidate in strategy.shrink(&failing) {
                if budget == 0 {
                    break 'descend;
                }
                budget -= 1;
                if !test(&candidate) {
                    failing = candidate;
                    continue 'descend;
                }
            }
            break;
        }
        failing
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests: each `arg in strategy` binding is regenerated for
/// every case and the body re-run.  A failing case is **shrunk** to a
/// minimal failing input (greedy descent over
/// [`strategy::Strategy::shrink`] candidates), the minimal case is printed,
/// and the body is re-run on it so the panic the test harness reports is
/// the minimal one.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let strategy = ($($strategy,)+);
                let found = $crate::test_runner::with_silent_panics(|| {
                    $crate::test_runner::find_failure(
                        &strategy,
                        stringify!($name),
                        cases,
                        |case| {
                            let ($($arg,)+) = ::std::clone::Clone::clone(case);
                            let run = || -> () { $body };
                            ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)).is_ok()
                        },
                    )
                });
                if let Some((case, minimal)) = found {
                    eprintln!(
                        "proptest: property `{}` failed on case {case} of {cases}; \
                         shrunk to minimal failing case: {minimal:?} \
                         (seeded from the test name; rerun reproduces it)",
                        stringify!($name),
                    );
                    // Re-run the minimal case outside catch_unwind so the
                    // harness reports its actual assertion failure.
                    let ($($arg,)+) = minimal;
                    let run = || -> () { $body };
                    run();
                    unreachable!(
                        "proptest: property `{}` failed during the search but its \
                         minimal case passed on re-run (non-deterministic body?)",
                        stringify!($name),
                    );
                }
            }
        )*
    };
}

/// Assert a condition inside a property (maps to [`assert!`]).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (maps to [`assert_eq!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Pick uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::TestRng;
    use crate::test_runner;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 3usize..17, w in -5i64..5) {
            prop_assert!((3..17).contains(&v));
            prop_assert!((-5..5).contains(&w));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![
                (0usize..4).prop_map(|n| n * 10),
                (0usize..4).prop_map(|n| n + 100),
            ]
        ) {
            prop_assert!(x < 40 || (100..104).contains(&x));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_failing_int_property_shrinks_to_the_threshold() {
        // Property "v < 10" over 0..1000: the minimal failing case is
        // exactly 10, and the greedy descent must find it from whatever
        // case the seeded stream failed on first.
        let strategy = 0u64..1000;
        let (case, minimal) = test_runner::find_failure(&strategy, "shrink-int", 256, |v| *v < 10)
            .expect("a failing case exists in 256 draws from 0..1000");
        assert!(case < 256);
        assert_eq!(minimal, 10, "shrink must stop at the minimal failing value");
        // Shrinking respects the range floor: a property failing everywhere
        // shrinks to the range start.
        let (_, floor) =
            test_runner::find_failure(&(5u32..500), "shrink-floor", 16, |_| false).unwrap();
        assert_eq!(floor, 5);
    }

    #[test]
    fn known_failing_vec_property_shrinks_to_minimal_length_and_elements() {
        // Property "len < 5": minimal failing case is 5 elements, each
        // shrunk to the element strategy's floor (0 for any::<u8>).
        let strategy = crate::collection::vec(any::<u8>(), 0..32);
        let (_, minimal) = test_runner::find_failure(&strategy, "shrink-vec", 256, |v| v.len() < 5)
            .expect("a failing case exists");
        assert_eq!(minimal, vec![0u8; 5]);
    }

    #[test]
    fn tuple_components_shrink_independently() {
        // Fails whenever a > 3 — b is irrelevant and must shrink to its
        // floor while a stops at the threshold 4.
        let strategy = (0usize..100, 0i64..50);
        let (_, minimal) =
            test_runner::find_failure(&strategy, "shrink-tuple", 256, |(a, _b)| *a <= 3)
                .expect("a failing case exists");
        assert_eq!(minimal, (4, 0));
    }

    #[test]
    fn passing_properties_report_no_failure() {
        assert!(test_runner::find_failure(&(0u8..10), "all-pass", 64, |_| true).is_none());
    }

    proptest! {
        #[test]
        #[should_panic]
        fn known_failing_property_panics_with_the_minimal_case(v in 0usize..1000) {
            // Exercises the macro's failure path end-to-end: search, shrink,
            // report, re-run of the minimal case (which panics here).
            prop_assert!(v < 10);
        }
    }

    #[test]
    fn string_patterns_generate_utf8_in_length_bounds() {
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..200 {
            let s = Strategy::generate(&".{0,32}", &mut rng);
            assert!(s.chars().count() <= 32);
            let any_len = Strategy::generate(&".*", &mut rng);
            assert!(any_len.chars().count() <= 64);
        }
    }
}
