//! Value-generation strategies and the deterministic RNG driving them.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic SplitMix64 generator. Seeded from a test's name so every
/// run of a property replays the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (FNV-1a over the bytes).
    pub fn deterministic(label: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from a half-open `usize` range (empty ranges yield the
    /// start).
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.end <= range.start {
            return range.start;
        }
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }

    /// Uniform draw from a half-open `i128` range (empty ranges yield the
    /// start); wide enough for every primitive integer type.
    pub fn i128_in(&mut self, start: i128, end: i128) -> i128 {
        if end <= start {
            return start;
        }
        let span = (end - start) as u128;
        let draw = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        start + (draw % span) as i128
    }
}

/// A recipe for generating values of one type.
///
/// Generation is a deterministic function of the RNG stream.  Failing
/// values are **shrunk**: [`Strategy::shrink`] proposes simpler candidate
/// values, and the runner greedily walks toward a minimal failing case
/// (integers shrink toward the range start / zero, vectors toward fewer
/// and simpler elements).  Strategies that cannot invert their values
/// (`prop_map`, `prop_oneof!`) propose nothing and simply report the
/// original failing case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose simpler candidates for a failing `value`, "most simplified
    /// first".  Every candidate must itself be a value this strategy could
    /// generate; an empty proposal list ends the shrink for this value.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Shrink candidates for an integer failing value: toward `floor` (the
/// range start, or zero for `any`), halving first so the walk is a binary
/// search, then the immediate predecessor for the final step.
fn shrink_int(floor: i128, value: i128) -> Vec<i128> {
    if value == floor {
        return Vec::new();
    }
    let mut out = vec![floor];
    let mid = floor + (value - floor) / 2;
    if mid != floor && mid != value {
        out.push(mid);
    }
    out.push(if value > floor { value - 1 } else { value + 1 });
    out
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A boxed, type-erased strategy (element type of [`Union`]).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Box a strategy, erasing its concrete type.
pub fn boxed<S>(strategy: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &V) -> Vec<V> {
        (**self).shrink(value)
    }
}

/// Uniform choice among several strategies with a common value type
/// (backs the [`prop_oneof!`](crate::prop_oneof) macro).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<V> Union<V> {
    /// A union over the given non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.usize_in(0..self.options.len());
        self.options[pick].generate(rng)
    }

    // No `shrink`: the union does not record which option produced a value,
    // so another option's candidates could fall outside every branch.
    // Failing `prop_oneof!` cases are reported unshrunk.
}

/// Strategy for "any value of `T`" — full bit patterns for integers and
/// floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// The `any::<T>()` entry point.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: PhantomData,
    }
}

macro_rules! any_int {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Any<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }

                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_int(0, *value as i128)
                        .into_iter()
                        .map(|v| v as $ty)
                        .collect()
                }
            }
        )*
    };
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // All bit patterns, NaNs and infinities included: codecs must
        // round-trip them bit-for-bit.
        f64::from_bits(rng.next_u64())
    }
}

impl Strategy for Any<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.i128_in(self.start as i128, self.end as i128) as $ty
                }

                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_int(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $ty)
                        .collect()
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }

            // One component is simplified at a time, the others cloned
            // unchanged — the standard coordinate-descent shrink.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!(A => 0);
tuple_strategy!(A => 0, B => 1);
tuple_strategy!(A => 0, B => 1, C => 2);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);

/// String-pattern strategies: a `&str` is interpreted as a regex the way the
/// workspace's tests use them — `".*"` (any string up to 64 chars) and
/// `".{lo,hi}"` (length between `lo` and `hi`). Anything else generates the
/// pattern's literal characters, which keeps unknown patterns loud in tests
/// rather than silently empty.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = match parse_length_pattern(self) {
            Some(bounds) => bounds,
            None => return (*self).to_owned(),
        };
        let len = rng.usize_in(lo..hi + 1);
        (0..len).map(|_| random_char(rng)).collect()
    }

    /// Shrink by truncating toward the pattern's minimum length (half the
    /// excess, then one char); characters themselves are left alone.
    fn shrink(&self, value: &String) -> Vec<String> {
        let Some((lo, _)) = parse_length_pattern(self) else {
            return Vec::new();
        };
        let chars: Vec<char> = value.chars().collect();
        if chars.len() <= lo {
            return Vec::new();
        }
        let half = lo + (chars.len() - lo) / 2;
        let mut out = Vec::new();
        if half < chars.len() {
            out.push(chars[..half].iter().collect());
        }
        out.push(chars[..chars.len() - 1].iter().collect());
        out
    }
}

fn parse_length_pattern(pattern: &str) -> Option<(usize, usize)> {
    if pattern == ".*" {
        return Some((0, 64));
    }
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Mostly printable ASCII, with a sprinkling of multi-byte code points so
/// UTF-8 handling is exercised.
fn random_char(rng: &mut TestRng) -> char {
    match rng.next_u64() % 8 {
        0 => char::from_u32(0x00A1 + (rng.next_u64() % 0x500) as u32).unwrap_or('ß'),
        1 => ['λ', '雪', '🛰', '∀', 'Ω', 'ț'][rng.usize_in(0..6)],
        _ => (b' ' + (rng.next_u64() % 95) as u8) as char,
    }
}
